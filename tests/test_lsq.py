"""Unit tests for the LoadStoreQueue orchestrator.

These drive the queue directly (no processor): allocate in program
order, execute/commit by hand, and assert on forwarding, violation
detection at both detection points, port arbitration, and segmentation
behaviour.
"""

import pytest

from repro.config import (
    AllocationPolicy,
    ContentionPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    MemoryConfig,
    PredictorMode,
    StoreSetConfig,
)
from repro.core.lsq import CommitResult, LoadResult, LoadStoreQueue, Retry, \
    StoreResult
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.dyninst import DynInst
from repro.stats.counters import SimStats
from tests.conftest import load, store


def make_lsq(**config_kwargs):
    config = LsqConfig(**config_kwargs)
    stats = SimStats()
    memory = MemoryHierarchy(MemoryConfig())
    lsq = LoadStoreQueue(config, StoreSetConfig(clear_interval=0),
                         memory, stats)
    return lsq, stats


_SEQ = [0]


def dyn(inst):
    _SEQ[0] += 1
    return DynInst(_SEQ[0], _SEQ[0], inst)


def add_load(lsq, addr, pc=0x1000):
    ld = dyn(load(addr, pc=pc))
    lsq.allocate(ld)
    return ld


def add_store(lsq, addr, pc=0x2000):
    st = dyn(store(addr, pc=pc))
    lsq.allocate(st)
    return st


@pytest.fixture(autouse=True)
def reset_seq():
    _SEQ[0] = 0


class TestForwarding:
    def test_load_forwards_from_executed_store(self):
        lsq, stats = make_lsq()
        st = add_store(lsq, 0x40)
        assert isinstance(lsq.try_execute_store(st, 1), StoreResult)
        ld = add_load(lsq, 0x40)
        result = lsq.try_execute_load(ld, 2)
        assert isinstance(result, LoadResult)
        assert result.forwarded
        assert ld.forwarded_from == st.seq
        assert stats.forwarded_loads == 1

    def test_load_ignores_unexecuted_store(self):
        lsq, stats = make_lsq()
        add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        result = lsq.try_execute_load(ld, 1)
        assert not result.forwarded

    def test_load_ignores_younger_store(self):
        lsq, __ = make_lsq()
        ld = add_load(lsq, 0x40)
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 1)
        result = lsq.try_execute_load(ld, 2)
        assert not result.forwarded

    def test_forwards_from_youngest_older_store(self):
        lsq, __ = make_lsq()
        st1 = add_store(lsq, 0x40, pc=0x2000)
        st2 = add_store(lsq, 0x40, pc=0x2004)
        lsq.try_execute_store(st1, 1)
        lsq.try_execute_store(st2, 2)
        ld = add_load(lsq, 0x40)
        result = lsq.try_execute_load(ld, 3)
        assert ld.forwarded_from == st2.seq

    def test_different_address_no_forward(self):
        lsq, __ = make_lsq()
        st = add_store(lsq, 0x80)
        lsq.try_execute_store(st, 1)
        ld = add_load(lsq, 0x40)
        assert not lsq.try_execute_load(ld, 2).forwarded

    def test_forward_latency_is_l1_hit(self):
        lsq, __ = make_lsq()
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 1)
        ld = add_load(lsq, 0x40)
        assert lsq.try_execute_load(ld, 2).latency == 2


class TestStoreLoadViolation:
    def test_detected_at_store_execute(self):
        lsq, stats = make_lsq()
        st = add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        lsq.try_execute_load(ld, 1)          # premature: store unexecuted
        result = lsq.try_execute_store(st, 2)
        assert result.violation is not None
        assert result.violation.squash_seq == ld.seq
        assert result.violation.kind == "store-load"
        assert stats.store_load_squashes == 1

    def test_forwarded_load_is_safe(self):
        lsq, __ = make_lsq()
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 1)
        ld = add_load(lsq, 0x40)
        lsq.try_execute_load(ld, 2)
        # Store re-checks would not (and do not) fire: detection already
        # happened at execute with no violation.
        assert lsq.try_commit_store(st, 3).violation is None

    def test_load_forwarded_from_older_store_still_premature(self):
        lsq, __ = make_lsq()
        old_st = add_store(lsq, 0x40, pc=0x2000)
        lsq.try_execute_store(old_st, 1)
        mid_st = add_store(lsq, 0x40, pc=0x2004)
        ld = add_load(lsq, 0x40)
        lsq.try_execute_load(ld, 2)          # forwards from old_st
        result = lsq.try_execute_store(mid_st, 3)
        assert result.violation is not None
        assert result.violation.squash_seq == ld.seq

    def test_unissued_load_not_flagged(self):
        lsq, __ = make_lsq()
        st = add_store(lsq, 0x40)
        add_load(lsq, 0x40)                   # never executed
        assert lsq.try_execute_store(st, 1).violation is None

    def test_oldest_violator_selected(self):
        lsq, __ = make_lsq()
        st = add_store(lsq, 0x40)
        ld1 = add_load(lsq, 0x40)
        ld2 = add_load(lsq, 0x40)
        lsq.try_execute_load(ld1, 1)
        lsq.try_execute_load(ld2, 1)
        result = lsq.try_execute_store(st, 2)
        assert result.violation.squash_seq == ld1.seq


class TestDetectionAtCommit:
    def make_pair_lsq(self):
        return make_lsq(predictor=PredictorMode.PAIR)

    def test_store_execute_does_not_search(self):
        lsq, stats = self.make_pair_lsq()
        st = add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        lsq.try_execute_load(ld, 1)
        searches_before = stats.lq_searches
        assert lsq.try_execute_store(st, 2).violation is None
        assert stats.lq_searches == searches_before

    def test_violation_detected_at_commit(self):
        lsq, stats = self.make_pair_lsq()
        st = add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        lsq.try_execute_load(ld, 1)           # untrained: skips SQ search
        lsq.try_execute_store(st, 2)
        result = lsq.try_commit_store(st, 3)
        assert result.violation is not None
        assert result.violation.squash_seq == ld.seq
        assert result.violation.extra_penalty == 1  # counter rollback
        assert stats.missed_dependences == 1

    def test_commit_violation_trains_predictor(self):
        lsq, __ = self.make_pair_lsq()
        st = add_store(lsq, 0x40, pc=0x2000)
        ld = add_load(lsq, 0x40, pc=0x1000)
        lsq.try_execute_load(ld, 1)
        lsq.try_execute_store(st, 2)
        lsq.try_commit_store(st, 3)
        # Re-dispatch the same static pair: the load is now predicted
        # dependent and must search.
        st2 = add_store(lsq, 0x48, pc=0x2000)
        ld2 = add_load(lsq, 0x48, pc=0x1000)
        assert ld2.predicted_dependent
        assert lsq._needs_sq_search(ld2)

    def test_untrained_load_skips_search(self):
        lsq, stats = self.make_pair_lsq()
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 1)
        ld = add_load(lsq, 0x40)
        result = lsq.try_execute_load(ld, 2)
        assert not result.forwarded          # it never searched
        assert stats.sq_searches == 0


class TestLoadLoadOrdering:
    def test_conventional_detects_violation(self):
        lsq, stats = make_lsq()
        older = add_load(lsq, 0x40)
        younger = add_load(lsq, 0x40)
        lsq.try_execute_load(younger, 1)      # out of order
        result = lsq.try_execute_load(older, 2)
        assert result.violation is not None
        assert result.violation.squash_seq == younger.seq
        assert result.violation.kind == "load-load"
        assert stats.load_load_squashes == 1

    def test_different_addresses_no_violation(self):
        lsq, __ = make_lsq()
        older = add_load(lsq, 0x40)
        younger = add_load(lsq, 0x80)
        lsq.try_execute_load(younger, 1)
        assert lsq.try_execute_load(older, 2).violation is None

    def test_load_buffer_detects_violation(self):
        lsq, stats = make_lsq(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                              load_buffer_entries=2)
        older = add_load(lsq, 0x40)
        younger = add_load(lsq, 0x40)
        lsq.try_execute_load(younger, 1)
        assert younger.load_buffer_slot >= 0  # parked as OOO-issued
        result = lsq.try_execute_load(older, 2)
        assert result.violation is not None
        assert result.violation.squash_seq == younger.seq
        assert stats.lq_searches == 0         # the LQ itself was not searched

    def test_load_buffer_full_blocks(self):
        lsq, __ = make_lsq(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                           load_buffer_entries=1)
        add_load(lsq, 0x10)                   # oldest, never issues
        ooo1 = add_load(lsq, 0x20)
        ooo2 = add_load(lsq, 0x30)
        lsq.try_execute_load(ooo1, 1)
        assert lsq.load_blocked(ooo2) == "load_buffer_full"

    def test_nilp_release_frees_buffer(self):
        lsq, __ = make_lsq(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                           load_buffer_entries=1)
        oldest = add_load(lsq, 0x10)
        ooo = add_load(lsq, 0x20)
        lsq.try_execute_load(ooo, 1)
        assert lsq.load_buffer.full
        lsq.try_execute_load(oldest, 2)       # NILP advances past ooo
        assert not lsq.load_buffer.full

    def test_in_order_mode_blocks_younger(self):
        lsq, __ = make_lsq(lq_search=LoadQueueSearchMode.IN_ORDER)
        add_load(lsq, 0x10)
        younger = add_load(lsq, 0x20)
        assert lsq.load_blocked(younger) == "in_order"

    def test_in_order_always_search_still_searches(self):
        lsq, stats = make_lsq(
            lq_search=LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH)
        ld = add_load(lsq, 0x10)
        lsq.try_execute_load(ld, 1)
        assert stats.lq_searches == 1


class TestPorts:
    def test_sq_search_port_exhaustion(self):
        lsq, stats = make_lsq(search_ports=1)
        st = add_store(lsq, 0x900)
        lsq.try_execute_store(st, 0)
        a = add_load(lsq, 0x40)
        b = add_load(lsq, 0x48)
        assert isinstance(lsq.try_execute_load(a, 1), LoadResult)
        outcome = lsq.try_execute_load(b, 1)
        assert isinstance(outcome, Retry)
        assert outcome.next_cycle == 2
        assert stats.sq_port_stalls == 1

    def test_ports_recover_next_cycle(self):
        lsq, __ = make_lsq(search_ports=1)
        st = add_store(lsq, 0x900)
        lsq.try_execute_store(st, 0)
        a = add_load(lsq, 0x40)
        b = add_load(lsq, 0x48)
        lsq.try_execute_load(a, 1)
        lsq.try_execute_load(b, 1)
        assert isinstance(lsq.try_execute_load(b, 2), LoadResult)

    def test_empty_sq_search_needs_no_sq_port(self):
        lsq, stats = make_lsq(search_ports=1)
        ld = add_load(lsq, 0x40)
        assert isinstance(lsq.try_execute_load(ld, 1), LoadResult)
        # The SQ was empty: the (counted) search used no SQ port slot,
        # so another search in the same cycle is still admissible.
        assert lsq.sq_ports.available(0, 1)
        assert stats.sq_searches == 1

    def test_younger_allocated_loads_consume_lq_port(self):
        # Load-load checks probe the CAM over allocated younger entries
        # even when those have not issued — this is exactly the port
        # pressure the load buffer removes.
        lsq, __ = make_lsq(search_ports=1)
        loads = [add_load(lsq, 0x40 + 8 * i) for i in range(3)]
        assert isinstance(lsq.try_execute_load(loads[0], 1), LoadResult)
        assert isinstance(lsq.try_execute_load(loads[1], 1), Retry)

    def test_store_commit_needs_dcache_port(self):
        lsq, stats = make_lsq()
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 1)
        for __ in range(4):                    # drain the 4 L1-D ports
            lsq.memory.try_reserve_data_port(2)
        outcome = lsq.try_commit_store(st, 2)
        assert isinstance(outcome, Retry)
        assert isinstance(lsq.try_commit_store(st, 3), CommitResult)


class TestSegmentedBehaviour:
    def make_segmented(self, **kw):
        return make_lsq(segments=4, segment_entries=4, **kw)

    def test_multi_segment_search_latency(self):
        lsq, stats = self.make_segmented()
        # Fill more than one SQ segment with executed stores.
        stores = [add_store(lsq, 0x1000 + 8 * i) for i in range(6)]
        for i, st in enumerate(stores):
            lsq.try_execute_store(st, i)
        far_load = add_load(lsq, 0x40)         # no match: searches them all
        result = lsq.try_execute_load(far_load, 10)
        assert result.latency > 2              # extra segment cycles
        assert max(stats.segment_search_hist) >= 2

    def test_single_segment_search_constant_latency(self):
        lsq, stats = self.make_segmented()
        st = add_store(lsq, 0x40)
        lsq.try_execute_store(st, 0)
        ld = add_load(lsq, 0x40)
        result = lsq.try_execute_load(ld, 1)
        assert result.forwarded
        assert result.latency == 2             # head segment: early sched
        assert stats.segment_search_hist.get(1, 0) >= 1

    def test_capacity_is_segments_times_entries(self):
        lsq, __ = self.make_segmented()
        for i in range(16):
            add_load(lsq, 0x100 + 8 * i)
        probe = dyn(load(0x900))
        assert not lsq.can_allocate(probe)

    def test_contention_stall_policy(self):
        lsq, stats = self.make_segmented(
            search_ports=1, contention=ContentionPolicy.STALL)
        stores = [add_store(lsq, 0x1000 + 8 * i) for i in range(6)]
        for i, st in enumerate(stores):
            lsq.try_execute_store(st, i)
        # First no-match load books segments (1, 0) at cycles (10, 11).
        a = add_load(lsq, 0x40)
        assert isinstance(lsq.try_execute_load(a, 10), LoadResult)
        # Second load at cycle 11 wants segment 1 then 0 at cycle 12 —
        # segment 1 is free at 11... but its own-segment slot at cycle 11
        # collides with the first search's segment-0-at-11 only on
        # segment 0.  Construct the collision directly instead:
        b = add_load(lsq, 0x48)
        outcome = lsq.try_execute_load(b, 10)  # same start cycle
        assert isinstance(outcome, Retry)      # busy_now on segment 1
        assert stats.sq_port_stalls >= 1


class TestSquash:
    def test_squash_clears_everything(self):
        lsq, __ = make_lsq(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                           load_buffer_entries=2)
        add_load(lsq, 0x10)
        st = add_store(lsq, 0x20)
        ooo = add_load(lsq, 0x30)
        lsq.try_execute_load(ooo, 1)
        lsq.squash_from(st.seq)
        assert len(lsq.sq) == 0
        assert len(lsq.lq) == 1
        assert len(lsq.load_buffer) == 0
        assert lsq.nilp.ooo_in_flight == 0

    def test_squash_rolls_back_predictor_counter(self):
        lsq, __ = make_lsq(predictor=PredictorMode.PAIR)
        lsq.predictor.train_violation(0x1000, 0x2000)
        st = add_store(lsq, 0x40, pc=0x2000)
        ld_probe = dyn(load(0x48, pc=0x1000))
        lsq.predictor.on_load_dispatch(ld_probe)
        assert lsq.predictor.should_search(ld_probe)
        lsq.squash_from(st.seq)
        ld_probe2 = dyn(load(0x48, pc=0x1000))
        lsq.predictor.on_load_dispatch(ld_probe2)
        assert not lsq.predictor.should_search(ld_probe2)


class TestPerfectMode:
    def test_blocks_until_matching_store_executes(self):
        lsq, __ = make_lsq(predictor=PredictorMode.PERFECT)
        st = add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        assert lsq.load_blocked(ld) == "store_set"
        lsq.try_execute_store(st, 1)
        assert lsq.load_blocked(ld) is None

    def test_searches_only_on_match(self):
        lsq, stats = make_lsq(predictor=PredictorMode.PERFECT)
        st = add_store(lsq, 0x80)
        lsq.try_execute_store(st, 1)
        miss = add_load(lsq, 0x40)
        lsq.try_execute_load(miss, 2)
        assert stats.sq_searches == 0
        hit = add_load(lsq, 0x80)
        result = lsq.try_execute_load(hit, 3)
        assert result.forwarded
        assert stats.sq_searches == 1

    def test_never_violates(self):
        lsq, stats = make_lsq(predictor=PredictorMode.PERFECT)
        st = add_store(lsq, 0x40)
        ld = add_load(lsq, 0x40)
        assert lsq.load_blocked(ld) is not None   # must wait
        lsq.try_execute_store(st, 1)
        lsq.try_execute_load(ld, 2)
        assert lsq.try_commit_store(st, 3).violation is None
        assert stats.store_load_squashes == 0
