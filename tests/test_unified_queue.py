"""Tests for the unified (combined load+store) queue option."""

import pytest
from dataclasses import replace

from repro.config import LsqConfig, MemoryConfig, PredictorMode, \
    StoreSetConfig, base_machine
from repro.core.lsq import LoadResult, LoadStoreQueue, Retry
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.dyninst import DynInst
from repro.pipeline.processor import simulate
from repro.stats.counters import SimStats
from repro.workload.synthetic import generate_trace
from tests.conftest import load, store


def make_lsq(**kwargs):
    config = LsqConfig(unified_queue=True, **kwargs)
    stats = SimStats()
    lsq = LoadStoreQueue(config, StoreSetConfig(clear_interval=0),
                         MemoryHierarchy(MemoryConfig()), stats)
    return lsq, stats


_SEQ = [100]


def dyn(inst):
    _SEQ[0] += 1
    return DynInst(_SEQ[0], _SEQ[0], inst)


class TestUnifiedStructure:
    def test_single_shared_queue(self):
        lsq, __ = make_lsq()
        assert lsq.lq is lsq.sq
        assert lsq.lq_ports is lsq.sq_ports
        assert lsq.lq.capacity == 64   # lq_entries + sq_entries

    def test_capacity_is_shared(self):
        lsq, __ = make_lsq(lq_entries=4, sq_entries=4)
        for i in range(8):
            inst = dyn(load(0x100 + 8 * i) if i % 2 else store(0x500 + 8 * i))
            assert lsq.can_allocate(inst)
            lsq.allocate(inst)
        assert not lsq.can_allocate(dyn(load(0x900)))

    def test_forwarding_skips_load_entries(self):
        lsq, __ = make_lsq()
        blocker = dyn(load(0x40))        # a LOAD at the same address
        lsq.allocate(blocker)
        lsq.try_execute_load(blocker, 1)
        st = dyn(store(0x40))
        lsq.allocate(st)
        lsq.try_execute_store(st, 2)
        probe = dyn(load(0x40))
        lsq.allocate(probe)
        result = lsq.try_execute_load(probe, 3)
        assert isinstance(result, LoadResult)
        assert probe.forwarded_from == st.seq   # matched the store, not the load

    def test_ordering_check_skips_store_entries(self):
        lsq, __ = make_lsq()
        older = dyn(load(0x40))
        lsq.allocate(older)
        st = dyn(store(0x40))
        lsq.allocate(st)
        lsq.try_execute_store(st, 1)
        # The younger *store* must not register as a load-load violation.
        result = lsq.try_execute_load(older, 2)
        assert result.violation is None

    def test_shared_ports_contended_by_both_searches(self):
        lsq, stats = make_lsq(search_ports=1)
        st = dyn(store(0x900))
        lsq.allocate(st)
        lsq.try_execute_store(st, 0)
        first = dyn(load(0x40))
        lsq.allocate(first)
        second = dyn(load(0x48))
        lsq.allocate(second)
        # Each load needs an SQ search + an LQ ordering search on the
        # SAME single-ported CAM: even the first cannot run both at once.
        assert isinstance(lsq.try_execute_load(first, 1), Retry)


class TestUnifiedEndToEnd:
    def test_completes_all_benchmark_traces(self):
        trace = generate_trace("vortex", n_instructions=1500)
        machine = replace(base_machine(), lsq=LsqConfig(unified_queue=True))
        result = simulate(trace, machine)
        assert result.stats.committed == len(trace)

    def test_unified_with_techniques(self):
        from repro.config import LoadQueueSearchMode
        trace = generate_trace("gzip", n_instructions=1500)
        machine = replace(base_machine(), lsq=LsqConfig(
            unified_queue=True, predictor=PredictorMode.PAIR,
            lq_search=LoadQueueSearchMode.LOAD_BUFFER,
            load_buffer_entries=2))
        result = simulate(trace, machine)
        assert result.stats.committed == len(trace)

    def test_occupancy_split_correctly(self):
        trace = generate_trace("gzip", n_instructions=1500)
        machine = replace(base_machine(), lsq=LsqConfig(unified_queue=True))
        stats = simulate(trace, machine).stats
        assert stats.avg_lq_occupancy > 0
        assert stats.avg_sq_occupancy > 0

    def test_segmented_unified(self):
        trace = generate_trace("mgrid", n_instructions=1500)
        machine = replace(base_machine(), lsq=LsqConfig(
            unified_queue=True, segments=4, segment_entries=28))
        result = simulate(trace, machine)
        assert result.stats.committed == len(trace)
