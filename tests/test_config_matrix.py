"""Cross-feature configuration matrix.

Every pairwise combination of the major features must simulate a trace
to completion — the kind of interaction coverage that catches "pair
predictor x segmented x membar" style regressions.
"""

import pytest
from dataclasses import replace

from repro.config import (
    AllocationPolicy,
    ContentionPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
    scaled_machine,
)
from repro.pipeline.processor import simulate
from repro.workload.synthetic import generate_trace

N = 800


@pytest.fixture(scope="module")
def trace():
    return generate_trace("vortex", n_instructions=N)


PREDICTORS = [PredictorMode.CONVENTIONAL, PredictorMode.PAIR,
              PredictorMode.AGGRESSIVE, PredictorMode.PERFECT]
LQ_MODES = [LoadQueueSearchMode.SEARCH_LQ, LoadQueueSearchMode.LOAD_BUFFER,
            LoadQueueSearchMode.IN_ORDER, LoadQueueSearchMode.INVALIDATION]


@pytest.mark.parametrize("predictor", PREDICTORS)
@pytest.mark.parametrize("lq_mode", LQ_MODES)
def test_predictor_x_lq_mode(trace, predictor, lq_mode):
    lsq = LsqConfig(predictor=predictor, lq_search=lq_mode,
                    load_buffer_entries=2, search_ports=1)
    result = simulate(trace, replace(base_machine(), lsq=lsq))
    assert result.stats.committed == N


@pytest.mark.parametrize("predictor", PREDICTORS)
@pytest.mark.parametrize("allocation", list(AllocationPolicy))
def test_predictor_x_segmentation(trace, predictor, allocation):
    lsq = LsqConfig(predictor=predictor, segments=4, segment_entries=12,
                    allocation=allocation,
                    lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                    load_buffer_entries=2)
    result = simulate(trace, replace(base_machine(), lsq=lsq))
    assert result.stats.committed == N


@pytest.mark.parametrize("contention", list(ContentionPolicy))
@pytest.mark.parametrize("ports", [1, 2])
def test_contention_x_ports(trace, contention, ports):
    lsq = LsqConfig(segments=4, segment_entries=12, search_ports=ports,
                    contention=contention)
    result = simulate(trace, replace(base_machine(), lsq=lsq))
    assert result.stats.committed == N


@pytest.mark.parametrize("unified", [False, True])
@pytest.mark.parametrize("mshrs", [0, 4])
def test_unified_x_mshrs(trace, unified, mshrs):
    machine = replace(base_machine(),
                      lsq=LsqConfig(unified_queue=unified))
    machine = replace(machine, memory=replace(machine.memory,
                                              l1d_mshrs=mshrs))
    result = simulate(trace, machine)
    assert result.stats.committed == N


@pytest.mark.parametrize("scaled", [False, True])
def test_scaled_x_full_techniques(trace, scaled):
    from repro.config import full_techniques_lsq
    base = scaled_machine() if scaled else base_machine()
    result = simulate(trace, replace(base, lsq=full_techniques_lsq(ports=1)))
    assert result.stats.committed == N


def test_membar_x_segmented():
    profile_trace = generate_trace(
        replace(__import__("repro.workload", fromlist=["profile_for"]
                           ).profile_for("gzip"),
                membar_policy="targeted", same_addr_load_frac=0.02),
        n_instructions=N)
    lsq = LsqConfig(lq_search=LoadQueueSearchMode.MEMBAR, segments=4,
                    segment_entries=12)
    result = simulate(profile_trace, replace(base_machine(), lsq=lsq))
    assert result.stats.committed == N
