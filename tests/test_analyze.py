"""Tests for the simulator-aware static analyzer (``repro.analyze``).

Each rule family gets fixture sources that *must* trigger it and
near-misses that must not; on top of that the suppression syntax, the
JSON baseline, the CLI exit codes, and — the gate this PR installs —
the shipped tree linting clean.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analyze import RULE_CATALOG, analyze_paths
from repro.analyze.baseline import (load_baseline, split_by_baseline,
                                    write_baseline)
from repro.analyze.runner import run_lint


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and analyze it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], root=str(tmp_path))


def rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# SIM-D: determinism
# ---------------------------------------------------------------------------

class TestDeterminismRules:
    def test_d001_set_iteration_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(items):
                active = {1, 2, 3}
                out = []
                for x in active:
                    out.append(x)
                materialised = [x for x in {4, 5}]
                return out, materialised
        """})
        assert rules_of(findings) == ["SIM-D001", "SIM-D001"]

    def test_d001_ordered_consumption_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(items):
                active = {1, 2, 3}
                total = sum(x for x in active)
                ordered = sorted(active)
                members = {x for x in active}
                return total, ordered, members
        """})
        assert findings == []

    def test_d002_dict_views_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d):
                snapshot = list(d.values())
                for k in d.keys():
                    snapshot.append(k)
                return snapshot
        """})
        assert rules_of(findings) == ["SIM-D002", "SIM-D002"]

    def test_d002_items_membership_and_reducers_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d, x):
                for k, v in d.items():
                    pass
                present = x in d.keys()
                top = max(d.values())
                return present, top
        """})
        assert findings == []

    def test_d003_global_random_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            import random

            def f():
                rng = random.Random()
                return random.randint(0, 3), rng
        """})
        assert sorted(rules_of(findings)) == ["SIM-D003", "SIM-D003"]

    def test_d003_seeded_rng_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng.randint(0, 3) + rng.random()
        """})
        assert findings == []

    def test_d004_wall_clock_and_id_ordering_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            import time

            def f(xs):
                started = time.time()
                xs.sort(key=id)
                return started
        """})
        assert sorted(rules_of(findings)) == ["SIM-D004", "SIM-D004"]

    def test_d004_id_membership_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(seen, obj):
                return id(obj) in seen
        """})
        assert findings == []


# ---------------------------------------------------------------------------
# SIM-M: state-mutation discipline
# ---------------------------------------------------------------------------

class TestMutationRules:
    def test_m001_foreign_writes_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/stage.py": """
            class Stage:
                def step(self):
                    self.lsq.head = 0
                    self.rob.count += 1
        """})
        assert rules_of(findings) == ["SIM-M001", "SIM-M001"]

    def test_m001_registry_init_and_stats_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/stage.py": """
            SIM_LINT_INTERFACES = {"scoreboard"}

            class Stage:
                def __init__(self, lsq):
                    self.lsq = lsq
                    self.lsq.owner = self

                def step(self):
                    self.stats.cycles += 1
                    self.scoreboard.mode = 1
                    self.lsq.advance()
        """})
        assert findings == []

    def test_m001_out_of_scope_tree_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"harness/driver.py": """
            class Driver:
                def step(self):
                    self.runner.count += 1
        """})
        assert findings == []

    def test_m002_private_access_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"pipeline/stage.py": """
            class Stage:
                def peek(self):
                    return self.lsq._stores

                def busy(self):
                    return self.queue._head > 0
        """})
        assert rules_of(findings) == ["SIM-M002", "SIM-M002"]

    def test_m002_own_private_and_dunder_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"pipeline/stage.py": """
            class Stage:
                def peek(self):
                    self._cache = self.lsq.depth()
                    return self._cache, self.lsq.__class__
        """})
        assert findings == []


# ---------------------------------------------------------------------------
# SIM-C: stats accounting
# ---------------------------------------------------------------------------

_C_FIXTURE = {
    "stats/counters.py": """
        class SimStats:
            cycles: int = 0
            dead_counter: int = 0
            zombie_metric: int = 0
    """,
    "sim.py": """
        class Sim:
            def step(self):
                self.stats.cycles += 1
                self.stats.dead_counter += 1
    """,
    "report.py": """
        def report(stats):
            return stats.cycles, stats.zombie_metric
    """,
}


class TestCounterRules:
    def test_c001_and_c002_flagged_at_declaration(self, tmp_path):
        findings = lint_tree(tmp_path, dict(_C_FIXTURE))
        assert rules_of(findings) == ["SIM-C001", "SIM-C002"]
        assert all(f.path == "stats/counters.py" for f in findings)
        assert "dead_counter" in findings[0].message
        assert "zombie_metric" in findings[1].message

    def test_balanced_counter_clean(self, tmp_path):
        files = dict(_C_FIXTURE)
        files["report.py"] = """
            def report(stats):
                return stats.cycles, stats.zombie_metric, stats.dead_counter
        """
        files["sim.py"] = """
            class Sim:
                def step(self):
                    self.stats.cycles += 1
                    self.stats.dead_counter += 1
                    self.stats.zombie_metric = self.stats.cycles * 2
        """
        assert lint_tree(tmp_path, files) == []

    def test_no_simstats_class_no_findings(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            class OtherStats:
                ghost: int = 0
        """})
        assert findings == []


# ---------------------------------------------------------------------------
# SIM-P: port discipline
# ---------------------------------------------------------------------------

class TestPortRules:
    def test_p001_unadmitted_bookings_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/client.py": """
            class Client:
                def book(self, cycle):
                    self.calendar.reserve(0, cycle)

                def book_path(self, path, cycle):
                    self.calendar.reserve_path(path, cycle)
        """})
        assert rules_of(findings) == ["SIM-P001", "SIM-P001"]

    def test_p001_admitted_or_own_booking_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/client.py": """
            class Client:
                def gated(self, cycle):
                    if self.calendar.available(0, cycle):
                        self.calendar.reserve(0, cycle)

                def own(self, cycle):
                    self.reserve(0, cycle)
        """})
        assert findings == []

    def test_p002_discarded_verdicts_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"memory/meter.py": """
            class Meter:
                def fire(self, cycle):
                    self.calendar.available(0, cycle)
                    self.ports.try_reserve_port(cycle)
        """})
        assert rules_of(findings) == ["SIM-P002", "SIM-P002"]

    def test_p002_consumed_verdicts_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"memory/meter.py": """
            class Meter:
                def fire(self, cycle):
                    granted = self.ports.try_reserve_port(cycle)
                    if self.calendar.available(0, cycle):
                        granted = True
                    return granted
        """})
        assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d):
                return list(d.values())  # sim-lint: ignore[SIM-D002]
        """})
        assert findings == []

    def test_comment_line_above_suppression(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d):
                # sim-lint: ignore[SIM-D002]
                return list(d.values())
        """})
        assert findings == []

    def test_bare_ignore_suppresses_all_rules(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            import time

            def f(d):
                return list(d.values()), time.time()  # sim-lint: ignore
        """})
        assert findings == []

    def test_mismatched_rule_id_does_not_suppress(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d):
                return list(d.values())  # sim-lint: ignore[SIM-D001]
        """})
        assert rules_of(findings) == ["SIM-D002"]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def test_roundtrip_and_split(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": """
            def f(d):
                return list(d.values())
        """})
        assert len(findings) == 1
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), findings)
        baseline = load_baseline(str(baseline_file))
        assert set(baseline) == {findings[0].fingerprint()}
        new, old = split_by_baseline(findings, baseline)
        assert new == [] and old == findings

    def test_runner_baseline_workflow(self, tmp_path, capsys):
        source = tmp_path / "mod.py"
        source.write_text("def f(d):\n    return list(d.values())\n")
        baseline_file = tmp_path / "baseline.json"
        assert run_lint([str(source)]) == 1
        assert run_lint([str(source),
                         "--write-baseline", str(baseline_file)]) == 0
        assert run_lint([str(source), "--baseline", str(baseline_file)]) == 0
        capsys.readouterr()

    def test_rejects_non_object_baseline(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_baseline(str(bad))


# ---------------------------------------------------------------------------
# CLI / runner
# ---------------------------------------------------------------------------

class TestRunner:
    def test_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(d):\n    return list(d.values())\n")
        clean = tmp_path / "clean.py"
        clean.write_text("def f(d):\n    return sorted(d.values())\n")
        assert run_lint([str(dirty)]) == 1
        assert run_lint([str(clean)]) == 0
        assert run_lint([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(d):\n    return list(d.values())\n")
        assert run_lint([str(dirty), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "SIM-D002"
        assert payload[0]["line"] == 2

    def test_list_rules(self, capsys):
        assert run_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_CATALOG:
            assert rule_id in out

    def test_cli_subcommand_exit_status(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(d):\n    return list(d.values())\n")
        package_dir = Path(repro.__file__).parent
        env_root = str(package_dir.parent)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", str(dirty)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_root, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 1
        assert "SIM-D002" in proc.stdout


# ---------------------------------------------------------------------------
# the gate: catalog hygiene and a clean shipped tree
# ---------------------------------------------------------------------------

class TestShippedTree:
    def test_catalog_ids_well_formed(self):
        for rule_id, info in RULE_CATALOG.items():
            assert rule_id.startswith("SIM-")
            assert info.family and info.rationale and info.fixit

    def test_every_finding_has_catalog_fixit(self, tmp_path):
        findings = lint_tree(tmp_path, dict(_C_FIXTURE))
        for finding in findings:
            assert finding.rule in RULE_CATALOG
            assert finding.fixit == RULE_CATALOG[finding.rule].fixit

    def test_shipped_tree_lints_clean(self):
        package_dir = Path(repro.__file__).parent
        findings = analyze_paths([str(package_dir)])
        assert findings == [], "\n".join(f.format() for f in findings)
