"""Unit tests for the segmented queues and port calendars (Section 3)."""

import pytest

from repro.config import AllocationPolicy
from repro.core.queues import PortCalendar, SegmentedQueue
from repro.pipeline.dyninst import DynInst
from tests.conftest import load, store


def entry(seq, addr=None):
    return DynInst(seq, seq,
                   load(addr if addr is not None else 8 * seq, pc=4 * seq))


def fill(queue, seqs):
    made = [entry(s) for s in seqs]
    for e in made:
        queue.allocate(e)
    return made


class TestFlatQueue:
    def make(self, entries=4):
        return SegmentedQueue("Q", 1, entries,
                              AllocationPolicy.SELF_CIRCULAR)

    def test_fifo_commit(self):
        q = self.make()
        a, b = fill(q, [1, 2])
        q.commit_head(a)
        assert q.oldest is b

    def test_out_of_order_commit_rejected(self):
        q = self.make()
        a, b = fill(q, [1, 2])
        with pytest.raises(RuntimeError):
            q.commit_head(b)

    def test_capacity(self):
        q = self.make(entries=2)
        fill(q, [1, 2])
        assert not q.can_allocate()
        with pytest.raises(RuntimeError):
            q.allocate(entry(3))

    def test_circular_reuse(self):
        q = self.make(entries=2)
        a, b = fill(q, [1, 2])
        q.commit_head(a)
        assert q.can_allocate()
        q.allocate(entry(3))
        assert [e.seq for e in q.entries()] == [2, 3]

    def test_squash_from(self):
        q = self.make()
        fill(q, [1, 2, 3, 4])
        dropped = q.squash_from(3)
        assert sorted(e.seq for e in dropped) == [3, 4]
        assert [e.seq for e in q.entries()] == [1, 2]

    def test_backward_plan_orders_youngest_first(self):
        q = self.make()
        fill(q, [1, 2, 3])
        plan = q.backward_plan(4)
        assert len(plan) == 1
        segment, entries = plan[0]
        assert [e.seq for e in entries] == [3, 2, 1]

    def test_forward_plan_orders_oldest_first(self):
        q = self.make()
        fill(q, [1, 2, 3])
        plan = q.forward_plan(0)
        assert [e.seq for e in plan[0][1]] == [1, 2, 3]

    def test_plans_respect_seq_bound(self):
        q = self.make()
        fill(q, [1, 2, 3])
        assert [e.seq for e in q.backward_plan(3)[0][1]] == [2, 1]
        assert [e.seq for e in q.forward_plan(2)[0][1]] == [3]

    def test_empty_plans(self):
        q = self.make()
        assert q.backward_plan(10) == []
        assert q.forward_plan(0) == []


class TestSelfCircular:
    def make(self):
        return SegmentedQueue("Q", 4, 4, AllocationPolicy.SELF_CIRCULAR)

    def test_compacts_into_one_segment(self):
        q = self.make()
        made = fill(q, range(1, 4))
        assert {e.lsq_segment for e in made} == {0}

    def test_reuses_freed_entries_in_segment(self):
        q = self.make()
        made = fill(q, range(1, 5))      # fills segment 0
        q.commit_head(made[0])
        extra = entry(10)
        q.allocate(extra)
        assert extra.lsq_segment == 0    # reuse, not spill

    def test_spills_when_segment_full(self):
        q = self.make()
        fill(q, range(1, 5))             # segment 0 full
        extra = entry(10)
        q.allocate(extra)
        assert extra.lsq_segment == 1

    def test_full_queue(self):
        q = self.make()
        fill(q, range(16))
        assert not q.can_allocate()

    def test_head_segment_tracks_oldest(self):
        q = self.make()
        made = fill(q, range(1, 6))      # segments 0 and 1
        assert q.head_segment() == 0
        for e in made[:4]:
            q.commit_head(e)
        assert q.head_segment() == 1


class TestNoSelfCircular:
    def make(self):
        return SegmentedQueue("Q", 4, 4, AllocationPolicy.NO_SELF_CIRCULAR)

    def test_linear_advance_despite_free_entries(self):
        q = self.make()
        made = fill(q, range(1, 5))      # occupies ring slots 0..3 (seg 0)
        for e in made:
            q.commit_head(e)             # segment 0 is now empty
        extra = entry(10)
        q.allocate(extra)
        assert extra.lsq_segment == 1    # the ring moved on regardless

    def test_wraps_around(self):
        q = self.make()
        made = fill(q, range(16))
        for e in made:
            q.commit_head(e)
        extra = entry(20)
        q.allocate(extra)
        assert extra.lsq_segment == 0

    def test_blocks_when_target_segment_full(self):
        q = self.make()
        fill(q, range(4))                # segment 0 holds 4 live entries
        for __ in range(12):
            q.allocate(entry(100 + __))  # fill segments 1..3
        assert not q.can_allocate()      # ring points at segment 0 again

    def test_squash_rewinds_ring(self):
        q = self.make()
        made = fill(q, range(1, 7))      # spans segments 0 and 1
        q.squash_from(5)                 # drop the segment-1 entries
        replacement = entry(30)
        q.allocate(replacement)
        assert replacement.lsq_segment == 1
        assert replacement.lsq_virtual == 4


class TestMultiSegmentPlans:
    def test_backward_plan_visits_younger_segment_first(self):
        q = SegmentedQueue("Q", 4, 2, AllocationPolicy.SELF_CIRCULAR)
        fill(q, [1, 2, 3, 4])            # segments 0 and 1
        plan = q.backward_plan(10)
        assert [segment for segment, __ in plan] == [1, 0]
        assert [e.seq for e in plan[0][1]] == [4, 3]
        assert [e.seq for e in plan[1][1]] == [2, 1]

    def test_forward_plan_visits_older_segment_first(self):
        q = SegmentedQueue("Q", 4, 2, AllocationPolicy.SELF_CIRCULAR)
        fill(q, [1, 2, 3, 4])
        plan = q.forward_plan(0)
        assert [segment for segment, __ in plan] == [0, 1]

    def test_occupied_segments(self):
        q = SegmentedQueue("Q", 4, 2, AllocationPolicy.SELF_CIRCULAR)
        fill(q, [1, 2, 3])
        assert q.occupied_segments() == 2


class TestPortCalendar:
    def test_ports_per_segment_per_cycle(self):
        cal = PortCalendar(2)
        cal.reserve(0, 5)
        cal.reserve(0, 5)
        assert not cal.available(0, 5)
        assert cal.available(0, 6)
        assert cal.available(1, 5)

    def test_over_reserve_raises(self):
        cal = PortCalendar(1)
        cal.reserve(0, 1)
        with pytest.raises(RuntimeError):
            cal.reserve(0, 1)

    def test_check_path_ok(self):
        cal = PortCalendar(1)
        assert cal.check_path([0, 1, 2], 3) == "ok"

    def test_check_path_busy_now(self):
        cal = PortCalendar(1)
        cal.reserve(0, 3)
        assert cal.check_path([0, 1], 3) == "busy_now"

    def test_check_path_busy_later(self):
        cal = PortCalendar(1)
        cal.reserve(1, 4)
        assert cal.check_path([0, 1], 3) == "busy_later"

    def test_reserve_path_staggers_cycles(self):
        cal = PortCalendar(1)
        cal.reserve_path([0, 1, 2], 10)
        assert not cal.available(0, 10)
        assert not cal.available(1, 11)
        assert not cal.available(2, 12)
        assert cal.available(1, 10)

    def test_empty_path_always_ok(self):
        cal = PortCalendar(1)
        assert cal.check_path([], 0) == "ok"
        cal.reserve_path([], 0)

    def test_gc_keeps_future_reservations(self):
        cal = PortCalendar(1)
        cal.reserve(0, 100)
        cal.begin_cycle(99)
        cal.begin_cycle(200)   # sweeps the past
        assert cal.available(0, 100)  # was swept (now in the past)
        cal.reserve(0, 300)
        cal.begin_cycle(265)
        assert not cal.available(0, 300)
