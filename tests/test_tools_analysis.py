"""Tests for trace-analysis tools and cross-run analysis helpers."""

import pytest

from repro.stats.analysis import (
    PressureBreakdown,
    SweepSummary,
    calibration_report,
    correlation,
    rank_agreement,
    search_pressure,
)
from repro.stats.counters import SimStats
from repro.workload.tools import (
    address_locality,
    burstiness,
    dependence_profile,
    mix_report,
    same_address_load_pairs,
    store_load_match_distances,
)
from repro.workload.trace import Trace
from repro.workload.synthetic import generate_trace
from tests.conftest import alu, filler, load, store


class TestMatchDistances:
    def test_counts_matches_and_distances(self):
        insts = [store(0x40, pc=0x100), alu(pc=0x104),
                 load(0x40, pc=0x108, dest=1),    # distance 2
                 load(0x80, pc=0x10C, dest=2)]    # no match
        profile = store_load_match_distances(Trace(insts), bucket=4)
        assert profile.total_loads == 2
        assert profile.matched_loads == 1
        assert profile.match_fraction == pytest.approx(0.5)
        assert profile.within(4) == 1

    def test_within_bound(self):
        insts = [store(0x40, pc=0x100)] + filler(100) + \
            [load(0x40, pc=0x108, dest=1)]
        profile = store_load_match_distances(Trace(insts))
        assert profile.matched_loads == 1
        assert profile.within(64) == 0
        assert profile.within(256) == 1

    def test_empty_trace(self):
        profile = store_load_match_distances(Trace([]))
        assert profile.match_fraction == 0.0


class TestDependenceProfile:
    def test_serial_chain(self):
        insts = [alu(pc=4 * i, dest=1, srcs=(1,)) for i in range(20)]
        profile = dependence_profile(Trace(insts))
        assert profile.critical_path == 20
        assert profile.dataflow_ipc_bound == pytest.approx(1.0)
        assert profile.mean_distance == pytest.approx(1.0)

    def test_independent_ops(self):
        profile = dependence_profile(Trace(filler(20)))
        assert profile.critical_path == 1
        assert profile.dataflow_ipc_bound == pytest.approx(20.0)

    def test_str(self):
        text = str(dependence_profile(Trace(filler(4))))
        assert "critical path" in text


class TestLocalityAndPairs:
    def test_locality_split(self):
        insts = [load(0x1000, pc=0x100, dest=1),
                 load(0x5000_0000, pc=0x104, dest=2),
                 load(0x1004, pc=0x108, dest=3)]   # same block as first
        trace = Trace(insts, cold_regions=[(0x5000_0000, 0x6000_0000)])
        locality = address_locality(trace)
        assert locality.hot_blocks == 1
        assert locality.cold_blocks == 1
        assert locality.unique_blocks == 2

    def test_same_address_pairs(self):
        insts = [load(0x40, pc=0x100, dest=1),
                 load(0x40, pc=0x104, dest=2),
                 load(0x80, pc=0x108, dest=3)]
        assert same_address_load_pairs(Trace(insts)) == 1

    def test_pairs_respect_window(self):
        insts = ([load(0x40, pc=0x100, dest=1)] + filler(300)
                 + [load(0x40, pc=0x104, dest=2)])
        assert same_address_load_pairs(Trace(insts), window=256) == 0

    def test_burstiness(self):
        insts = [load(8 * i, pc=0x100, dest=1) for i in range(8)] + \
            filler(8)
        hist = burstiness(Trace(insts), group=8)
        assert hist == {8: 1, 0: 1}

    def test_mix_report_runs_on_real_trace(self):
        trace = generate_trace("gzip", n_instructions=800)
        report = mix_report(trace)
        assert "forwarding" in report and "burstiness" in report


class TestCorrelation:
    def test_perfect_positive(self):
        assert correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_rejects_constant(self):
        with pytest.raises(ValueError):
            correlation([1, 1, 1], [1, 2, 3])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            correlation([1], [1, 2])

    def test_rank_agreement_monotone(self):
        assert rank_agreement([1, 5, 9], [2, 100, 101]) == pytest.approx(1.0)

    def test_rank_agreement_with_ties(self):
        value = rank_agreement([1, 2, 2, 3], [1, 2, 3, 4])
        assert 0.8 < value <= 1.0


class TestPressure:
    def test_dominant_source(self):
        stats = SimStats(sq_port_stalls=5, load_buffer_full_stalls=50)
        pressure = search_pressure(stats)
        assert pressure.dominant() == "load_buffer_full_stalls"
        assert "load_buffer_full_stalls" in pressure.format()

    def test_dispatch_stall_aggregation(self):
        stats = SimStats(lq_full_stalls=1, sq_full_stalls=2,
                         rob_full_stalls=3, iq_full_stalls=4)
        assert search_pressure(stats).dispatch_stalls == 10


class TestSweepSummary:
    def make(self):
        return SweepSummary(
            ipc={"base": {"a": 1.0, "b": 2.0},
                 "fast": {"a": 1.1, "b": 2.2}},
            baseline="base")

    def test_speedups(self):
        speedups = self.make().speedups()
        assert speedups["fast"]["a"] == pytest.approx(1.1)
        assert speedups["base"]["b"] == pytest.approx(1.0)

    def test_best_config(self):
        assert self.make().best_config() == "fast"

    def test_format_contains_geomean(self):
        assert "geomean-speedup" in self.make().format()


class TestCalibrationReport:
    def test_report_contains_stats(self):
        measured = {"a": 1.0, "b": 2.0, "c": 3.1}
        target = {"a": 1.1, "b": 2.2, "c": 2.9}
        text = calibration_report(measured, target, label="IPC")
        assert "Pearson r" in text
        assert "rank agreement" in text
        assert "IPC" in text
