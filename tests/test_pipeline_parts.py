"""Unit tests for the small pipeline structures: branch predictor, ROB,
issue queue, functional units, register file, DynInst."""

import pytest

from repro.config import BranchPredictorConfig
from repro.pipeline.branch_predictor import HybridBranchPredictor
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.functional_units import FunctionalUnits
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.regfile import RegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.workload.isa import OpClass
from tests.conftest import alu, load


def dyn(seq, inst=None):
    return DynInst(seq, seq, inst if inst is not None else alu(pc=4 * seq))


class TestBranchPredictor:
    def make(self):
        return HybridBranchPredictor(BranchPredictorConfig())

    def test_learns_always_taken(self):
        bp = self.make()
        for _ in range(20):
            bp.predict_and_update(0x100, True)
        assert bp.predict_and_update(0x100, True)

    def test_learns_alternating_pattern(self):
        bp = self.make()
        outcome = True
        for _ in range(200):
            bp.predict_and_update(0x200, outcome)
            outcome = not outcome
        correct = sum(bp.predict_and_update(0x200, (i % 2 == 0))
                      for i in range(40))
        assert correct >= 35  # history-based components capture it

    def test_mispredict_stats(self):
        bp = self.make()
        for i in range(100):
            bp.predict_and_update(0x300, i % 7 == 0)
        assert bp.stats.predictions == 100
        assert 0 < bp.stats.mispredictions < 100
        assert 0 < bp.stats.mispredict_rate < 1

    def test_loop_backedge_is_predictable(self):
        bp = self.make()
        mispredicts = 0
        for _ in range(30):           # 30 loops of trip 8
            for i in range(8):
                taken = i != 7
                if not bp.predict_and_update(0x400, taken):
                    mispredicts += 1
        assert mispredicts < 60       # much better than always-taken's 30+


class TestReorderBuffer:
    def test_dispatch_commit_in_order(self):
        rob = ReorderBuffer(4)
        a, b = dyn(1), dyn(2)
        rob.dispatch(a)
        rob.dispatch(b)
        assert rob.head is a
        a.state = InstState.COMPLETE
        assert rob.commit_head() is a
        assert rob.head is b

    def test_full(self):
        rob = ReorderBuffer(2)
        rob.dispatch(dyn(1))
        rob.dispatch(dyn(2))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.dispatch(dyn(3))

    def test_squash_from_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        insts = [dyn(i) for i in range(1, 6)]
        for inst in insts:
            rob.dispatch(inst)
        squashed = rob.squash_from(3)
        assert [i.seq for i in squashed] == [5, 4, 3]
        assert all(i.squashed for i in squashed)
        assert len(rob) == 2

    def test_squash_nothing(self):
        rob = ReorderBuffer(4)
        rob.dispatch(dyn(1))
        assert rob.squash_from(10) == []

    def test_commit_marks_committed(self):
        rob = ReorderBuffer(2)
        inst = dyn(1)
        rob.dispatch(inst)
        rob.commit_head()
        assert inst.state is InstState.COMMITTED


class TestIssueQueue:
    def test_ready_at_dispatch(self):
        iq = IssueQueue(4)
        inst = dyn(1)
        iq.dispatch(inst)
        assert iq.pop_ready() is inst

    def test_not_ready_until_woken(self):
        iq = IssueQueue(4)
        inst = dyn(1)
        inst.pending_sources = 1
        iq.dispatch(inst)
        assert iq.pop_ready() is None
        inst.pending_sources = 0
        iq.wake(inst)
        assert iq.pop_ready() is inst

    def test_oldest_first(self):
        iq = IssueQueue(4)
        younger, older = dyn(5), dyn(2)
        iq.dispatch(younger)
        iq.dispatch(older)
        assert iq.pop_ready() is older

    def test_squashed_entries_skipped(self):
        iq = IssueQueue(4)
        inst = dyn(1)
        iq.dispatch(inst)
        inst.state = InstState.SQUASHED
        assert iq.pop_ready() is None

    def test_capacity(self):
        iq = IssueQueue(2)
        iq.dispatch(dyn(1))
        iq.dispatch(dyn(2))
        assert iq.full
        with pytest.raises(RuntimeError):
            iq.dispatch(dyn(3))

    def test_release_and_squash_occupancy(self):
        iq = IssueQueue(4)
        iq.dispatch(dyn(1))
        iq.dispatch(dyn(2))
        iq.release()
        assert len(iq) == 1
        iq.squash(1)
        assert len(iq) == 0
        with pytest.raises(RuntimeError):
            iq.release()

    def test_unpop_restores(self):
        iq = IssueQueue(4)
        inst = dyn(1)
        iq.dispatch(inst)
        popped = iq.pop_ready()
        iq.unpop(popped)
        assert iq.pop_ready() is inst


class TestFunctionalUnits:
    def test_pool_selection(self):
        assert FunctionalUnits.pool_for(OpClass.INT_ALU) == "int"
        assert FunctionalUnits.pool_for(OpClass.LOAD) == "int"
        assert FunctionalUnits.pool_for(OpClass.FP_STORE) == "int"
        assert FunctionalUnits.pool_for(OpClass.BRANCH) == "int"
        assert FunctionalUnits.pool_for(OpClass.FP_ALU) == "fp"
        assert FunctionalUnits.pool_for(OpClass.FP_MUL) == "fp"

    def test_int_capacity_per_cycle(self):
        fus = FunctionalUnits(2, 2)
        assert fus.try_issue(OpClass.INT_ALU, 0)
        assert fus.try_issue(OpClass.LOAD, 0)
        assert not fus.try_issue(OpClass.INT_MUL, 0)
        assert fus.try_issue(OpClass.FP_ALU, 0)  # separate pool

    def test_capacity_resets(self):
        fus = FunctionalUnits(1, 1)
        assert fus.try_issue(OpClass.INT_ALU, 0)
        assert not fus.try_issue(OpClass.INT_ALU, 0)
        assert fus.try_issue(OpClass.INT_ALU, 1)

    def test_stall_stats(self):
        fus = FunctionalUnits(1, 1)
        fus.try_issue(OpClass.INT_ALU, 0)
        fus.try_issue(OpClass.INT_ALU, 0)
        assert fus.stats.structural_stalls == 1
        assert fus.stats.int_issued == 1


class TestRegisterFile:
    def test_free_list_accounting(self):
        rf = RegisterFile(34, 34)
        assert rf.can_rename(1)
        rf.rename(1)
        rf.rename(2)
        assert not rf.can_rename(3)
        rf.release(1)
        assert rf.can_rename(3)

    def test_fp_separate(self):
        rf = RegisterFile(33, 34)
        rf.rename(1)
        assert not rf.can_rename(2)
        assert rf.can_rename(40)   # FP register still free

    def test_no_reg_always_ok(self):
        from repro.workload.isa import NO_REG
        rf = RegisterFile(33, 33)
        rf.rename(1)
        assert rf.can_rename(NO_REG)
        rf.rename(NO_REG)          # no-op

    def test_exhaustion_raises(self):
        rf = RegisterFile(33, 33)
        rf.rename(1)
        with pytest.raises(RuntimeError):
            rf.rename(2)

    def test_requires_headroom(self):
        with pytest.raises(ValueError):
            RegisterFile(32, 356)


class TestDynInst:
    def test_initial_state(self):
        inst = dyn(7)
        assert inst.state is InstState.DISPATCHED
        assert not inst.issued
        assert not inst.complete
        assert not inst.squashed

    def test_state_predicates(self):
        inst = dyn(1)
        inst.state = InstState.ISSUED
        assert inst.issued and not inst.complete
        inst.state = InstState.COMPLETE
        assert inst.complete
        inst.state = InstState.SQUASHED
        assert inst.squashed

    def test_memory_properties(self):
        ld = DynInst(1, 0, load(0x40))
        assert ld.is_load and ld.is_memory
        assert ld.addr == 0x40

    def test_overlap_delegates(self):
        a = DynInst(1, 0, load(0x40))
        b = DynInst(2, 1, load(0x44))
        assert a.overlaps(b)
