"""Unit tests for the whole-program dataflow layer (``repro.analyze.
dataflow``): CFG guard facts, reaching definitions, the name-resolved
call graph, and the label-set taint engine."""

import ast
import textwrap

from repro.analyze.dataflow.callgraph import CallGraph, is_hotpath, own_nodes
from repro.analyze.dataflow.cfg import build_cfg, canonical_expr
from repro.analyze.dataflow.cfg import test_facts as condition_facts
from repro.analyze.dataflow.defuse import DefUse
from repro.analyze.dataflow.taint import (SinkSite, TaintEngine, TaintSpec,
                                          source_tags)
from repro.analyze.engine import SourceModule


def parse_module(source, path="mod.py"):
    text = textwrap.dedent(source)
    module = SourceModule(path=path, text=text, tree=ast.parse(text))
    module._index()
    return module


def func_named(module, name):
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise AssertionError(f"no function {name}")


def stmt_at(func, line):
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", 0) == line:
            return node
    raise AssertionError(f"no statement at line {line}")


# ---------------------------------------------------------------------------
# CFG: structure and guard facts
# ---------------------------------------------------------------------------

class TestCanonicalExpr:
    def test_dotted_chain(self):
        node = ast.parse("self.obs.bus", mode="eval").body
        assert canonical_expr(node) == "self.obs.bus"

    def test_non_chain_is_none(self):
        node = ast.parse("f().x", mode="eval").body
        assert canonical_expr(node) is None


class TestTestFacts:
    def test_is_not_none(self):
        test = ast.parse("x is not None", mode="eval").body
        on_true, on_false = condition_facts(test)
        assert on_true == {"nonnull:x"} and on_false == frozenset()

    def test_is_none_asserts_on_false(self):
        test = ast.parse("self.obs is None", mode="eval").body
        on_true, on_false = condition_facts(test)
        assert on_true == frozenset() and on_false == {"nonnull:self.obs"}

    def test_and_chain_unions_true_facts(self):
        test = ast.parse("a is not None and b", mode="eval").body
        on_true, __ = condition_facts(test)
        assert on_true == {"nonnull:a", "nonnull:b"}

    def test_not_swaps(self):
        test = ast.parse("not (x is None)", mode="eval").body
        on_true, __ = condition_facts(test)
        assert on_true == {"nonnull:x"}


class TestGuardFacts:
    def test_fact_holds_inside_guard(self):
        module = parse_module("""
            def f(self):
                if self.obs is not None:
                    self.obs.emit("e")
                self.tail()
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        inside = stmt_at(func, 4)
        after = stmt_at(func, 5)
        assert "nonnull:self.obs" in cfg.guard_facts_at(inside)
        assert "nonnull:self.obs" not in cfg.guard_facts_at(after)

    def test_alias_guard_pattern(self):
        module = parse_module("""
            def f(self):
                obs = self.obs
                if obs is not None:
                    obs.emit("e")
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        assert "nonnull:obs" in cfg.guard_facts_at(stmt_at(func, 5))

    def test_rebinding_kills_fact(self):
        module = parse_module("""
            def f(self, maker):
                if self.obs is not None:
                    self.obs = maker()
                    self.obs.emit("e")
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        assert "nonnull:self.obs" not in cfg.guard_facts_at(stmt_at(func, 5))

    def test_merge_is_intersection(self):
        module = parse_module("""
            def f(self, flag):
                if flag:
                    pass
                else:
                    if self.obs is None:
                        return
                self.obs.emit("e")
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        # Only one incoming path proved the guard: the fact must not hold.
        assert "nonnull:self.obs" not in cfg.guard_facts_at(stmt_at(func, 8))

    def test_early_return_guard_dominates(self):
        module = parse_module("""
            def f(self):
                if self.obs is None:
                    return
                self.obs.emit("e")
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        assert "nonnull:self.obs" in cfg.guard_facts_at(stmt_at(func, 5))

    def test_while_loop_guard(self):
        module = parse_module("""
            def f(self, q):
                while q is not None:
                    q = q.step()
        """)
        func = func_named(module, "f")
        cfg = build_cfg(func)
        assert "nonnull:q" in cfg.guard_facts_at(stmt_at(func, 4))


# ---------------------------------------------------------------------------
# Reaching definitions / def-use
# ---------------------------------------------------------------------------

class TestDefUse:
    def build(self, source, name="f"):
        module = parse_module(source)
        func = func_named(module, name)
        return func, DefUse.build(func, build_cfg(func))

    def name_load(self, func, ident, line):
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == ident \
                    and isinstance(node.ctx, ast.Load) \
                    and node.lineno == line:
                return node
        raise AssertionError(f"no load of {ident} at {line}")

    def test_straightline_single_def(self):
        func, du = self.build("""
            def f():
                x = 1
                x = 2
                return x
        """)
        defs = du.defs_of_use(self.name_load(func, "x", 5))
        assert [d.line for d in defs] == [4]

    def test_branch_merges_both_defs(self):
        func, du = self.build("""
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
        """)
        defs = du.defs_of_use(self.name_load(func, "x", 7))
        assert sorted(d.line for d in defs) == [4, 6]

    def test_parameter_definition(self):
        func, du = self.build("""
            def f(a):
                return a
        """)
        defs = du.defs_of_use(self.name_load(func, "a", 3))
        assert len(defs) == 1 and defs[0].param_index == 0

    def test_augassign_keeps_prior(self):
        func, du = self.build("""
            def f():
                x = 1
                x += 2
                return x
        """)
        defs = du.defs_of_use(self.name_load(func, "x", 5))
        assert sorted(d.line for d in defs) == [3, 4]
        assert any(d.augments for d in defs)

    def test_mutator_call_is_augmenting_def(self):
        func, du = self.build("""
            def f(v):
                out = []
                out.append(v)
                return out
        """)
        defs = du.defs_of_use(self.name_load(func, "out", 5))
        assert sorted(d.line for d in defs) == [3, 4]
        mutator = [d for d in defs if d.line == 4][0]
        assert mutator.augments and len(mutator.value_exprs) == 1

    def test_loop_target_def(self):
        func, du = self.build("""
            def f(items):
                for x in items:
                    use(x)
        """)
        defs = du.defs_of_use(self.name_load(func, "x", 4))
        assert len(defs) == 1 and defs[0].line == 3


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------

class TestCallGraph:
    def test_trailing_name_resolution_and_reachability(self):
        alpha = parse_module("""
            class Q:
                def search(self):
                    return self.helper()

                def helper(self):
                    return 1
        """, path="core/a.py")
        beta = parse_module("""
            def run():
                q = object()
                return q.search()

            def unrelated():
                return 0
        """, path="core/b.py")
        graph = CallGraph([alpha, beta])
        names = {graph.functions[i].qualname
                 for i in graph.reachable_from(["run"])}
        assert names == {"run", "Q.search", "Q.helper"}

    def test_hotpath_marking(self):
        module = parse_module("""
            from repro.core.hotpath import hotpath

            @hotpath
            def hot():
                pass

            def cold():
                pass
        """)
        funcs = {f.name: f for f in CallGraph([module]).functions}
        assert funcs["hot"].hotpath and not funcs["cold"].hotpath

    def test_own_nodes_does_not_leak_into_nested_scopes(self):
        module = parse_module("""
            def outer():
                def inner():
                    marker_inner()
                marker_outer()
        """)
        func = func_named(module, "outer")
        calls = [n for n in own_nodes(func) if isinstance(n, ast.Call)]
        assert [c.func.id for c in calls] == ["marker_outer"]
        module_calls = [n for n in own_nodes(module.tree)
                        if isinstance(n, ast.Call)]
        assert module_calls == []

    def test_is_hotpath_decorator_forms(self):
        module = parse_module("""
            @hotpath
            def a(): pass

            @core.hotpath
            def b(): pass

            @hotpath(level=2)
            def c(): pass

            @other
            def d(): pass
        """)
        marks = {f.name: is_hotpath(f.node)
                 for f in CallGraph([module]).functions}
        assert marks == {"a": True, "b": True, "c": True, "d": False}


# ---------------------------------------------------------------------------
# Taint engine
# ---------------------------------------------------------------------------

SPEC = TaintSpec(source_attrs={"_index": "test host index"})


def stats_sinks(info):
    sites = []
    for node in own_nodes(info.node):
        if isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Attribute) \
                and isinstance(node.target.value, ast.Attribute) \
                and node.target.value.attr == "stats":
            sites.append(SinkSite(node=node, exprs=(node.value,),
                                  descr=f"counter {node.target.attr}",
                                  rule="T-TEST"))
    return sites


def taint_hits(source, spec=SPEC, path="core/mod.py"):
    module = parse_module(source, path=path)
    graph = CallGraph([module])
    engine = TaintEngine(graph, spec, stats_sinks, modules=[module])
    engine.solve()
    return engine.collect_hits()


class TestTaintEngine:
    def test_direct_flow(self):
        hits = taint_hits("""
            class Q:
                def f(self):
                    self.stats.n += len(self._index)
        """)
        assert len(hits) == 1
        assert source_tags(frozenset(hits[0].tags))[0].what == "_index"

    def test_interprocedural_return_flow(self):
        hits = taint_hits("""
            class Q:
                def depth(self):
                    return len(self._index)

                def f(self):
                    self.stats.n += self.depth()
        """)
        assert len(hits) == 1
        assert hits[0].tags[0].via  # provenance records the hop

    def test_sink_parameter_flow(self):
        hits = taint_hits("""
            class Q:
                def charge(self, amount):
                    self.stats.n += amount

                def f(self):
                    self.charge(len(self._index))
        """)
        assert len(hits) == 1
        assert hits[0].via_call == "Q.charge"

    def test_accumulator_cannot_launder(self):
        hits = taint_hits("""
            class Q:
                def f(self):
                    acc = []
                    acc.append(len(self._index))
                    self.stats.n += len(acc)
        """)
        assert len(hits) == 1

    def test_clean_flow_no_hits(self):
        hits = taint_hits("""
            class Q:
                def f(self):
                    self.stats.n += len(self.window)
        """)
        assert hits == []

    def test_blessed_registry_launders(self):
        hits = taint_hits("""
            SIM_LINT_MODEL_VIEWS = frozenset({"path_view"})

            class Q:
                def path_view(self):
                    return list(self._index)

                def f(self):
                    self.stats.n += len(self.path_view())
        """)
        assert hits == []

    def test_unresolved_call_launders_off_hotpath(self):
        hits = taint_hits("""
            class Q:
                def f(self):
                    self.stats.n += external(self._index)
        """)
        assert hits == []

    def test_unresolved_call_propagates_on_hotpath(self):
        hits = taint_hits("""
            from repro.core.hotpath import hotpath

            class Q:
                @hotpath
                def f(self):
                    self.stats.n += external(self._index)
        """)
        assert len(hits) == 1

    def test_augassign_union_keeps_taint_across_branch(self):
        hits = taint_hits("""
            class Q:
                def f(self, flag):
                    n = 0
                    if flag:
                        n += len(self._index)
                    self.stats.n += n
        """)
        assert len(hits) == 1

    def test_param_tags_do_not_poison_attributes(self):
        # `self.window` must not inherit "param 0" taint from `self`:
        # passing a tainted receiver into g() is not a tainted read.
        hits = taint_hits("""
            class Q:
                def g(self):
                    self.stats.n += len(self.window)

                def f(self):
                    self.g()
        """)
        assert hits == []
