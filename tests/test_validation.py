"""The validation subsystem: oracle, invariants, checker, faults.

* The memory-model oracle computes the correct source of every load on
  hand-built traces (byte-granular, last-writer-wins).
* Clean runs validate cleanly: a hypothesis sweep over random
  (benchmark, LSQ preset, seed) combinations runs under the full
  checker without a single failure.
* Rigged corruptions are caught: deterministic fault injectors make the
  raising checker throw ``ValidationError`` / ``InvariantViolation``
  with a populated diagnostic bundle.
* Fault campaigns never end silent: every registered fault class is
  recovered, detected, or provably benign on every preset it applies
  to.
* The watchdog is configurable (``CoreConfig.watchdog_cycles`` /
  ``REPRO_WATCHDOG_CYCLES``) and raises ``SimulationDeadlock`` with a
  bundle.
* The CLI rejects unknown benchmarks/presets/figures with a clean
  nonzero exit, and ``check`` runs end to end.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import cli
from repro.config import CoreConfig, base_machine
from repro.harness.experiment import ExperimentRunner
from repro.pipeline.dyninst import DynInst
from repro.pipeline.processor import Processor, simulate
from repro.validate import (
    FAULT_CLASSES,
    CommittedMemory,
    InvariantViolation,
    MemoryOracle,
    SimulationDeadlock,
    SkipSqSearchFault,
    SuppressLoadBufferFault,
    ValidationChecker,
    ValidationError,
    run_all_fault_classes,
    run_fault_campaign,
    scan,
)
from repro.workload import generate_trace
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace


def preset_machine(name, ports=2):
    return replace(base_machine(), lsq=cli.PRESETS[name](ports=ports))


# ---------------------------------------------------------------------------
# memory-model oracle on hand-built traces
# ---------------------------------------------------------------------------

def hand_trace():
    return Trace([
        Instruction(pc=0x00, op=OpClass.STORE, addr=100, size=4),    # [0]
        Instruction(pc=0x04, op=OpClass.LOAD, dest=1,
                    addr=100, size=4),                               # [1]
        Instruction(pc=0x08, op=OpClass.STORE, addr=104, size=4),    # [2]
        Instruction(pc=0x0c, op=OpClass.LOAD, dest=2,
                    addr=100, size=8),                               # [3]
        Instruction(pc=0x10, op=OpClass.LOAD, dest=3,
                    addr=200, size=4),                               # [4]
        Instruction(pc=0x14, op=OpClass.STORE, addr=98, size=4),     # [5]
        Instruction(pc=0x18, op=OpClass.LOAD, dest=4,
                    addr=100, size=4),                               # [6]
    ], name="hand")


def test_oracle_correct_sources():
    oracle = MemoryOracle(hand_trace())
    assert oracle.correct_source(1) == 0       # exact-match store
    assert oracle.correct_source(3) == 2       # wide load: youngest wins
    assert oracle.correct_source(4) is None    # untouched address
    assert oracle.correct_source(6) == 5       # partial overlap, youngest
    assert len(oracle) == 4
    assert oracle.is_load(1) and not oracle.is_load(0)
    with pytest.raises(KeyError):
        oracle.correct_source(0)               # stores have no source


def test_committed_memory_versions():
    trace = hand_trace()
    memory = CommittedMemory()
    assert memory.version(trace[1]) is None
    memory.write(trace[0], 0)
    assert memory.version(trace[1]) == 0
    assert memory.version(trace[4]) is None
    memory.write(trace[5], 5)                  # bytes 98..101
    assert memory.version(trace[1]) == 5       # bytes 100..103: max(5, 0)
    memory.write(trace[2], 2)                  # bytes 104..107
    assert memory.version(trace[3]) == 5       # bytes 100..107: max(5, 2)


# ---------------------------------------------------------------------------
# invariant scan
# ---------------------------------------------------------------------------

def test_invariants_clean_on_fresh_processor():
    assert scan(Processor(base_machine())) == []


def test_invariants_flag_rigged_rob_disorder():
    processor = Processor(base_machine())
    alu = Instruction(pc=0x100, op=OpClass.INT_ALU, dest=1, srcs=(2,))
    processor.rob.dispatch(DynInst(5, 5, alu))
    processor.rob.dispatch(DynInst(3, 3, alu))
    names = {finding.name for finding in scan(processor)}
    assert "rob-order" in names
    # ...and committed work must stay committed:
    names = {finding.name for finding in scan(processor, min_seq=4)}
    assert any("not younger than last committed" in finding.message
               for finding in scan(processor, min_seq=4))
    assert "rob-order" in names


def test_invariants_flag_lsq_rob_mismatch():
    processor = Processor(base_machine())
    load = Instruction(pc=0x100, op=OpClass.LOAD, dest=1, addr=64, size=8)
    processor.rob.dispatch(DynInst(0, 0, load))   # in ROB, never in LQ
    names = {finding.name for finding in scan(processor)}
    assert "lsq-mirror" in names


# ---------------------------------------------------------------------------
# clean runs validate cleanly (hypothesis property)
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(bench=st.sampled_from(["bzip", "gcc", "mcf", "equake", "art"]),
       preset=st.sampled_from(sorted(cli.PRESETS)),
       seed=st.integers(0, 100))
def test_random_runs_pass_full_validation(bench, preset, seed):
    trace = generate_trace(bench, n_instructions=400, seed=seed)
    checker = ValidationChecker()      # raising: any failure throws
    result = simulate(trace, preset_machine(preset), checker=checker)
    assert checker.ok
    assert checker.checked_loads == result.stats.committed_loads
    assert checker.checked_cycles == result.stats.cycles


def test_experiment_runner_validate_passthrough():
    runner = ExperimentRunner(n_instructions=400, validate=True)
    result = runner.run("bzip", base_machine())
    assert result.stats.committed == 400


# ---------------------------------------------------------------------------
# rigged corruptions are caught, with diagnostic bundles
# ---------------------------------------------------------------------------

def test_skipped_sq_search_raises_validation_error():
    """Forcing dependent loads past the SQ search on a conventional
    machine commits stale loads the machine itself cannot notice (its
    store-execute-time check has already run) — the oracle must."""
    trace = generate_trace("gcc", n_instructions=2000, seed=0)
    checker = ValidationChecker()
    processor = Processor(preset_machine("conventional"), checker=checker)
    SkipSqSearchFault(seed=0, rate=1.0).install(processor)
    with pytest.raises(ValidationError) as excinfo:
        processor.run(trace)
    error = excinfo.value
    assert error.failure is not None
    assert error.bundle is not None
    text = str(error)
    assert "diagnostic bundle" in text
    assert "trace window" in text
    assert "pipetrace" in text


def test_suppressed_load_buffer_raises_invariant_violation():
    """Dropping load-buffer insertions breaks the NILP/LIV contract;
    the cycle-level invariant scan must catch it the cycle it happens."""
    trace = generate_trace("gcc", n_instructions=2000, seed=0)
    checker = ValidationChecker()
    processor = Processor(preset_machine("techniques"), checker=checker)
    SuppressLoadBufferFault(seed=0, rate=1.0).install(processor)
    with pytest.raises(InvariantViolation) as excinfo:
        processor.run(trace)
    assert excinfo.value.failure.kind.startswith("invariant:")
    assert excinfo.value.bundle is not None


# ---------------------------------------------------------------------------
# fault campaigns: zero silent corruptions
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("preset", ["conventional", "techniques", "full"])
def test_fault_campaigns_never_silent(preset):
    trace = generate_trace("gcc", n_instructions=2000, seed=1)
    reports = run_all_fault_classes(trace, preset_machine(preset), seed=3)
    assert set(reports) == set(FAULT_CLASSES)
    for report in reports.values():
        assert report.ok, report.format()
        for outcome in report.outcomes:
            assert outcome.status in ("recovered", "detected", "benign")


@pytest.mark.parametrize("fault_name,preset", [
    ("skip-sq-search", "conventional"),
    ("suppress-load-buffer", "techniques"),
    ("drop-segment-search", "full"),
])
def test_every_fault_class_fires_and_is_caught(fault_name, preset):
    """Each registered injector, on a preset whose LSQ exercises the
    corrupted path, both applies (injects at least once) and is caught
    at least once — recovered by the machine or detected by the
    checker — so the campaign is not vacuously green."""
    trace = generate_trace("gcc", n_instructions=2000, seed=0)
    injector = FAULT_CLASSES[fault_name](seed=3, rate=1.0)
    report = run_fault_campaign(trace, preset_machine(preset), injector)
    assert report.ok, report.format()
    assert report.outcomes, f"{fault_name}: no faults injected"
    caught = [o for o in report.outcomes
              if o.status in ("recovered", "detected")]
    assert caught, f"{fault_name}: every fault classified benign\n" \
                   + report.format()


# ---------------------------------------------------------------------------
# configurable watchdog
# ---------------------------------------------------------------------------

def test_watchdog_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_CYCLES", "123")
    assert CoreConfig().watchdog_cycles == 123
    monkeypatch.delenv("REPRO_WATCHDOG_CYCLES")
    assert CoreConfig().watchdog_cycles == 50_000
    with pytest.raises(ValueError):
        CoreConfig(watchdog_cycles=0)


def test_watchdog_deadlock_carries_bundle():
    machine = base_machine()
    machine = replace(machine, core=replace(machine.core, watchdog_cycles=2))
    trace = generate_trace("bzip", n_instructions=200, seed=0)
    with pytest.raises(SimulationDeadlock) as excinfo:
        simulate(trace, machine)
    assert excinfo.value.bundle is not None
    assert "no commit for 2 cycles" in str(excinfo.value)
    assert "diagnostic bundle" in str(excinfo.value)


# ---------------------------------------------------------------------------
# CLI robustness
# ---------------------------------------------------------------------------

def test_cli_unknown_benchmark_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["run", "nosuchbench"])
    assert excinfo.value.code == cli.EXIT_USAGE
    err = capsys.readouterr().err
    assert "nosuchbench" in err
    assert "bzip" in err    # lists the choices


def test_cli_unknown_preset_exits():
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["run", "bzip", "--lsq", "bogus"])
    assert excinfo.value.code == 2              # argparse choices error


def test_cli_unknown_figure_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["figure", "fig99"])
    assert excinfo.value.code == cli.EXIT_USAGE
    assert "fig99" in capsys.readouterr().err


def test_cli_check_unknown_benchmark_exits(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["check", "nosuchbench"])
    assert excinfo.value.code == cli.EXIT_USAGE
    assert "nosuchbench" in capsys.readouterr().err


def test_cli_check_smoke(capsys):
    cli.main(["check", "bzip", "-n", "600", "--lsq", "conventional"])
    out = capsys.readouterr().out
    assert "ok   bzip x conventional" in out
    assert "1/1 configuration(s) passed" in out


def test_cli_check_with_faults(capsys):
    cli.main(["check", "bzip", "-n", "600", "--lsq", "full", "--faults"])
    out = capsys.readouterr().out
    assert "ok   bzip x full" in out
    for name in FAULT_CLASSES:
        assert name in out


# ---------------------------------------------------------------------------
# classification branches: benign and silent, directly
# ---------------------------------------------------------------------------

class _StubInst:
    def __init__(self, state, squashed=False):
        self.state = state
        self.squashed = squashed


def _fault(inst, seq=5, trace_index=9):
    from repro.validate.faults import InjectedFault
    return InjectedFault(kind="stub", seq=seq, trace_index=trace_index,
                         cycle=1, detail="stub fault", inst=inst)


def test_classify_benign_branch():
    """Committed, unflagged, and the verdict record agrees with the
    oracle: the corruption provably did not matter."""
    from repro.pipeline.dyninst import InstState
    from repro.validate.faults import _classify

    fault = _fault(_StubInst(InstState.COMMITTED))
    outcome = _classify(fault, frozenset(), {9: (42, 42)})
    assert outcome.status == "benign"
    # A fault on an instruction without a verdict (e.g. a store) is
    # benign too — there is no value to have corrupted.
    assert _classify(fault, frozenset(), {}).status == "benign"


def test_classify_silent_branch():
    """Committed wrongly with nothing flagged: the one classification
    the subsystem exists to rule out, and it must fail the report."""
    from repro.pipeline.dyninst import InstState
    from repro.validate.faults import CampaignReport, _classify

    fault = _fault(_StubInst(InstState.COMMITTED))
    outcome = _classify(fault, frozenset(), {9: (41, 42)})
    assert outcome.status == "silent"
    # The same mismatch is NOT silent once the checker flagged the seq.
    flagged = _classify(fault, frozenset({5}), {9: (41, 42)})
    assert flagged.status == "detected"
    report = CampaignReport(fault_name="stub", trace_name="t",
                            outcomes=[outcome], checker=None)
    assert not report.ok
    assert "SILENT" in report.format()


def test_classify_unresolved_branch():
    from repro.pipeline.dyninst import InstState
    from repro.validate.faults import _classify

    outcome = _classify(_fault(_StubInst(InstState.DISPATCHED)),
                        frozenset(), {})
    assert outcome.status == "unresolved"


def test_nilp_corruption_campaign_is_benign_on_synthetic_traffic():
    """End-to-end benign coverage: NILP lies on organic traffic are
    value-invisible (stores still search the LQ), so the campaign
    classifies them benign — and proves it, never silent."""
    from repro.validate import NilpCorruptionFault

    trace = generate_trace("gcc", n_instructions=2000, seed=0)
    report = run_fault_campaign(trace, preset_machine("techniques"),
                                NilpCorruptionFault(seed=3, rate=1.0))
    assert report.outcomes, "no faults injected"
    assert report.ok, report.format()
    assert report.counts.get("benign", 0) > 0


def test_nilp_corruption_detected_on_rigged_trace():
    """The lie is invisible to the cycle invariants by construction, so
    the checker's missed-load-load cross-check is what must catch it:
    an older load stalled on its address register while a younger
    overlapping load issues (and, lied about, skips the load buffer)."""
    from repro.validate import NilpCorruptionFault

    insts = [Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=5, srcs=())]
    pc = 0x1004
    for _ in range(12):
        insts.append(Instruction(pc=pc, op=OpClass.FP_MUL, dest=5,
                                 srcs=(5,)))
        pc += 4
    insts.append(Instruction(pc=pc, op=OpClass.LOAD, dest=6, srcs=(5,),
                             addr=0x9000, size=8))
    insts.append(Instruction(pc=pc + 4, op=OpClass.LOAD, dest=7, srcs=(),
                             addr=0x9000, size=8))
    trace = Trace(insts, name="rigged-nilp")
    report = run_fault_campaign(trace, preset_machine("techniques"),
                                NilpCorruptionFault(seed=0, rate=1.0))
    assert report.counts == {"detected": 1}, report.format()
    assert any(f.kind == "missed-load-load"
               for f in report.checker.failures)
