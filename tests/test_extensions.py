"""Tests for the fidelity/statistics extensions: store-store ordering,
multi-seed runs, and confidence helpers."""

import pytest
from dataclasses import replace

from repro.config import StoreSetConfig, base_machine
from repro.harness.experiment import ExperimentRunner, confidence
from repro.pipeline.processor import simulate
from repro.workload.synthetic import generate_trace


class TestStoreStoreOrdering:
    def _machine(self, enabled: bool):
        machine = base_machine()
        return replace(machine, store_sets=replace(
            machine.store_sets, store_store_ordering=enabled))

    def test_off_by_default(self):
        assert not base_machine().store_sets.store_store_ordering

    def test_runs_to_completion_when_enabled(self):
        trace = generate_trace("vortex", n_instructions=1500)
        result = simulate(trace, self._machine(True))
        assert result.stats.committed == len(trace)

    def test_ordering_never_speeds_up(self):
        trace = generate_trace("vortex", n_instructions=1500)
        free = simulate(trace, self._machine(False)).ipc
        ordered = simulate(trace, self._machine(True)).ipc
        assert ordered <= free * 1.02  # at best neutral

    def test_unit_blocking(self):
        from repro.config import LsqConfig, MemoryConfig
        from repro.core.lsq import LoadStoreQueue
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.pipeline.dyninst import DynInst
        from repro.stats.counters import SimStats
        from tests.conftest import store

        lsq = LoadStoreQueue(LsqConfig(),
                             StoreSetConfig(store_store_ordering=True,
                                            clear_interval=0),
                             MemoryHierarchy(MemoryConfig()), SimStats())
        lsq.predictor.train_violation(0x1000, 0x2000)
        first = DynInst(1, 1, store(0x40, pc=0x2000))
        second = DynInst(2, 2, store(0x48, pc=0x2000))
        lsq.allocate(first)
        lsq.allocate(second)
        assert lsq.store_blocked(second) == "store_store"
        lsq.try_execute_store(first, 1)
        assert lsq.store_blocked(second) is None


class TestMultiSeed:
    def test_run_seeds_returns_one_result_per_seed(self):
        runner = ExperimentRunner(n_instructions=600)
        results = runner.run_seeds("gzip", base_machine(), seeds=(0, 1, 2))
        assert len(results) == 3
        ipcs = [r.ipc for r in results]
        assert len(set(ipcs)) > 1          # seeds genuinely differ
        assert max(ipcs) / min(ipcs) < 2.0  # ...but not wildly

    def test_confidence(self):
        mean, spread = confidence([1.0, 2.0])
        assert mean == pytest.approx(1.5)
        assert spread == pytest.approx(0.5)

    def test_confidence_single_value(self):
        assert confidence([2.5]) == (2.5, 0.0)

    def test_confidence_empty_raises(self):
        with pytest.raises(ValueError):
            confidence([])
