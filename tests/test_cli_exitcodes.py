"""The CLI exit-code contract, pinned in one place.

One number, one meaning, every verb:

====  =======================================================
code  meaning
====  =======================================================
0     success
1     validation / regression / failed-cell outcome
2     usage error (argparse's convention, everywhere)
3     forbidden litmus outcome (``repro litmus``)
4     watchdog: simulation hung (``check``/``litmus``)
5     serving: server unreachable (``repro submit``)
6     serving: backpressured past all retries (``repro submit``)
====  =======================================================

Historically several verbs rejected bad arguments via
``sys.exit("message")``, which exits **1** with the message as the
code — indistinguishable from a genuine validation failure.  Every
usage rejection now goes through one helper that prints to stderr and
exits 2, and this module is the regression net.
"""

import json

import pytest

from repro import cli


def run_cli(argv):
    try:
        cli.main(argv)
    except SystemExit as error:
        return error.code or 0
    return 0


def test_exit_codes_are_distinct_and_stable():
    codes = {cli.EXIT_VALIDATION, cli.EXIT_USAGE, cli.EXIT_FORBIDDEN,
             cli.EXIT_WATCHDOG, cli.EXIT_UNAVAILABLE, cli.EXIT_BUSY}
    assert codes == {1, 2, 3, 4, 5, 6}


@pytest.mark.parametrize("argv, fragment", [
    # run: bad benchmark / bad .lsqtrace path / bad litmus name
    (["run", "nosuchbench"], "unknown benchmark"),
    (["run", "/nonexistent/trace.lsqtrace"], "trace file not found"),
    (["run", "litmus/nosuchshape"], "litmus"),
    # figure
    (["figure", "fig99"], "unknown figure"),
    # check
    (["check", "nosuchbench"], "unknown benchmark"),
    # profile rejects .lsqtrace by design
    (["profile", "trace.lsqtrace"], "unknown benchmark"),
    # trace without a benchmark or --smoke
    (["trace"], "benchmark required"),
    # gentrace on a missing trace file
    (["gentrace", "/nonexistent/t.lsqtrace"], "trace file not found"),
    # litmus: malformed seed range (both shapes)
    (["litmus", "mp", "--seed-range", "5:2"], "bad --seed-range"),
    (["litmus", "mp", "--seed-range", "x"], "bad --seed-range"),
    # bench: unknown names, empty selections, missing baseline
    (["bench", "--benchmarks", "nosuchbench"], "unknown benchmark"),
    (["bench", "--presets", "nosuchpreset"], "unknown preset"),
    (["bench", "--benchmarks", "", "--expect-cached"], "zero cells"),
    (["bench", "--benchmarks", "gzip", "--seeds", ""], "zero cells"),
    (["bench", "--smoke", "--compare", "/nonexistent/base.json"],
     "baseline not found"),
    # serve: nonsensical knobs
    (["serve", "--workers", "0"], "--workers"),
    (["serve", "--max-jobs", "0"], "--max-jobs"),
    # submit: unparsable seed
    (["submit", "--seeds", "banana"], "bad seed"),
])
def test_usage_errors_exit_2_with_stderr(argv, fragment, capsys):
    assert run_cli(argv) == cli.EXIT_USAGE
    captured = capsys.readouterr()
    assert fragment in captured.err
    # the message must be on stderr, never smuggled into the code
    assert captured.out == ""


def test_argparse_own_rejections_also_exit_2(capsys):
    assert run_cli(["run", "bzip", "--lsq", "bogus"]) == cli.EXIT_USAGE
    assert run_cli(["nosuchverb"]) == cli.EXIT_USAGE
    capsys.readouterr()


def test_submit_unreachable_server_exits_5(capsys):
    # port 1 is never listening; connection refused, not a usage error
    assert run_cli(["submit", "--port", "1", "--smoke"]) \
        == cli.EXIT_UNAVAILABLE
    assert "cannot reach" in capsys.readouterr().err


def test_compare_unreadable_baseline_after_run_exits_2(tmp_path, capsys):
    """The inline ``--compare`` gate's read failure is a usage error
    (2), distinct from a real regression (1).  The file exists (so the
    fail-fast precheck admits it) but is not valid JSON."""
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    code = run_cli(["bench", "--smoke", "-n", "200", "--no-cache",
                    "-o", str(tmp_path / "out.json"),
                    "--compare", str(garbage)])
    assert code == cli.EXIT_USAGE
    assert "cannot read" in capsys.readouterr().err


def test_compare_regression_exits_1(tmp_path, capsys):
    """A genuine perf regression through --compare stays exit 1."""
    out = tmp_path / "fresh.json"
    assert run_cli(["bench", "--smoke", "-n", "200", "--no-cache",
                    "-o", str(out)]) == 0
    report = json.loads(out.read_text())
    for row in report["cells"]:
        row["sim_s"] = row["sim_s"] / 100.0   # fake a far-faster past
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(report))
    code = run_cli(["bench", "--smoke", "-n", "200", "--no-cache",
                    "-o", str(tmp_path / "second.json"),
                    "--compare", str(doctored)])
    assert code == cli.EXIT_VALIDATION
    capsys.readouterr()
