"""Unit tests for the instruction model."""

import pytest

from repro.workload.isa import (
    EXECUTION_LATENCY,
    NO_REG,
    Instruction,
    OpClass,
    make_nop,
)


class TestOpClass:
    def test_load_classes(self):
        assert OpClass.LOAD.is_load
        assert OpClass.FP_LOAD.is_load
        assert not OpClass.STORE.is_load

    def test_store_classes(self):
        assert OpClass.STORE.is_store
        assert OpClass.FP_STORE.is_store
        assert not OpClass.LOAD.is_store

    def test_memory_classes(self):
        for op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD,
                   OpClass.FP_STORE):
            assert op.is_memory
        for op in (OpClass.INT_ALU, OpClass.FP_ALU, OpClass.BRANCH):
            assert not op.is_memory

    def test_branch(self):
        assert OpClass.BRANCH.is_branch
        assert not OpClass.LOAD.is_branch

    def test_fp_classes(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MUL.is_fp
        assert OpClass.FP_LOAD.is_fp
        assert not OpClass.INT_ALU.is_fp

    def test_every_class_has_latency(self):
        for op in OpClass:
            assert EXECUTION_LATENCY[op] >= 1


class TestInstruction:
    def test_memory_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x100, op=OpClass.LOAD, dest=1)

    def test_memory_requires_positive_size(self):
        with pytest.raises(ValueError):
            Instruction(pc=0x100, op=OpClass.LOAD, dest=1, addr=8, size=0)

    def test_non_memory_needs_no_address(self):
        inst = Instruction(pc=0x100, op=OpClass.INT_ALU, dest=1)
        assert inst.addr == -1

    def test_properties(self):
        ld = Instruction(pc=0x100, op=OpClass.LOAD, dest=1, addr=64)
        assert ld.is_load and ld.is_memory and not ld.is_store
        st = Instruction(pc=0x104, op=OpClass.STORE, addr=64)
        assert st.is_store and st.is_memory and not st.is_load
        br = Instruction(pc=0x108, op=OpClass.BRANCH, taken=True)
        assert br.is_branch and not br.is_memory

    def test_latency_lookup(self):
        assert Instruction(pc=0, op=OpClass.INT_MUL, dest=1).latency == 3
        assert Instruction(pc=0, op=OpClass.INT_ALU, dest=1).latency == 1

    def test_overlap_exact(self):
        a = Instruction(pc=0, op=OpClass.LOAD, dest=1, addr=64, size=8)
        b = Instruction(pc=4, op=OpClass.STORE, addr=64, size=8)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlap_partial(self):
        a = Instruction(pc=0, op=OpClass.LOAD, dest=1, addr=64, size=8)
        b = Instruction(pc=4, op=OpClass.STORE, addr=68, size=8)
        assert a.overlaps(b)

    def test_no_overlap_adjacent(self):
        a = Instruction(pc=0, op=OpClass.LOAD, dest=1, addr=64, size=8)
        b = Instruction(pc=4, op=OpClass.STORE, addr=72, size=8)
        assert not a.overlaps(b)

    def test_no_overlap_non_memory(self):
        a = Instruction(pc=0, op=OpClass.INT_ALU, dest=1)
        b = Instruction(pc=4, op=OpClass.STORE, addr=0, size=8)
        assert not a.overlaps(b)

    def test_instructions_are_frozen(self):
        inst = Instruction(pc=0x100, op=OpClass.INT_ALU, dest=1)
        with pytest.raises(Exception):
            inst.pc = 0x200

    def test_make_nop(self):
        nop = make_nop(0x500)
        assert nop.pc == 0x500
        assert nop.dest == NO_REG
        assert not nop.srcs
