"""Unit tests for the memory hierarchy (Table 1 latencies and ports)."""

import pytest

from repro.config import MemoryConfig
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(MemoryConfig())


class TestDataPath:
    def test_full_miss_latency(self, hierarchy):
        result = hierarchy.data_access(0x1000)
        assert result.level == "MEM"
        assert result.latency == 2 + 12 + 150

    def test_l2_hit_latency(self, hierarchy):
        hierarchy.data_access(0x1000)           # fill everything
        hierarchy.l1d.invalidate_all()
        result = hierarchy.data_access(0x1000)
        assert result.level == "L2"
        assert result.latency == 2 + 12

    def test_l1_hit_latency(self, hierarchy):
        hierarchy.data_access(0x1000)
        result = hierarchy.data_access(0x1000)
        assert result.level == "L1"
        assert result.latency == 2
        assert result.l1_hit

    def test_miss_fills_all_levels(self, hierarchy):
        hierarchy.data_access(0x2000)
        assert hierarchy.l1d.contains(0x2000)
        assert hierarchy.l2.contains(0x2000)

    def test_dirty_l1_victim_lands_in_l2(self, hierarchy):
        # Fill one L1 set beyond capacity with writes.
        sets = hierarchy.l1d.config.num_sets
        block = hierarchy.l1d.config.block_bytes
        way_stride = sets * block
        addrs = [i * way_stride for i in range(3)]  # 2-way set 0
        for addr in addrs:
            hierarchy.data_access(addr, write=True)
        evicted = addrs[0]
        assert not hierarchy.l1d.contains(evicted)
        assert hierarchy.l2.contains(evicted)


class TestInstructionPath:
    def test_first_fetch_misses(self, hierarchy):
        result = hierarchy.instruction_access(0x400000)
        assert result.level == "MEM"

    def test_second_fetch_hits(self, hierarchy):
        hierarchy.instruction_access(0x400000)
        result = hierarchy.instruction_access(0x400000)
        assert result.level == "L1"
        assert result.latency == 2


class TestPorts:
    def test_data_ports_per_cycle(self, hierarchy):
        # Table 1: 4-ported L1-D.
        assert all(hierarchy.try_reserve_data_port(10) for _ in range(4))
        assert not hierarchy.try_reserve_data_port(10)

    def test_ports_reset_next_cycle(self, hierarchy):
        for _ in range(4):
            hierarchy.try_reserve_data_port(10)
        assert hierarchy.try_reserve_data_port(11)

    def test_available_peek(self, hierarchy):
        for _ in range(4):
            hierarchy.try_reserve_data_port(5)
        assert not hierarchy.d_ports.available(5)
        assert hierarchy.d_ports.available(6)
