"""The memory-consistency torture rig (``repro.litmus``).

* The allowed-outcome enumerator reproduces the textbook truth tables:
  MP/LB/CoRR/IRIW distinguish TSO from relaxed, SB distinguishes SC
  from TSO, and fences forbid the relaxed outcomes again.
* The generator is deterministic in ``(spec, seed)``, emits only whole
  instances with fresh addresses, and round-trips specs through
  ``litmus/...`` benchmark names.
* The full battery — every shape x fenced/unfenced x 8 seeds — commits
  only allowed outcomes on every machine's declared model, including
  the relaxed ``MEMBAR``-mode design.
* The checker fails loudly: doctored verdicts and a genuinely
  fault-corrupted run both produce forbidden-outcome witnesses with
  diagnostic bundles, and ``LitmusViolation`` when asked to raise.
* The litmus fault campaigns (drop-membar, corrupt-nilp) inject and
  never end silent; each class demonstrably fires and is caught.
* Litmus cells are first-class benchmarks: ``generate_trace`` and the
  cached sweep engine accept ``litmus/...`` names.
* The ``repro litmus`` verb reports distinct exit codes for forbidden
  outcomes (3), watchdog (4), and usage errors (2).
"""

from dataclasses import replace

import pytest

from repro import cli
from repro.config import (
    LoadQueueSearchMode,
    OrderingModel,
    base_machine,
)
from repro.litmus import (
    ALIEN,
    SHAPES,
    LitmusSpec,
    LitmusViolation,
    allowed_outcomes,
    check_outcomes,
    generate_litmus,
    interleave_streams,
    parse_litmus_name,
    run_battery,
    run_litmus,
    run_litmus_fault_campaign,
)
from repro.pipeline.processor import Processor
from repro.validate import SkipSqSearchFault, ValidationChecker
from repro.workload import generate_trace
from repro.workload.isa import OpClass


def preset_machine(name, ports=2):
    return replace(base_machine(), lsq=cli.PRESETS[name](ports=ports))


def membar_machine(ports=2):
    return replace(base_machine(),
                   lsq=replace(cli.PRESETS["conventional"](ports=ports),
                               lq_search=LoadQueueSearchMode.MEMBAR))


def outcomes(shape, model, fenced=False, contexts=0):
    return allowed_outcomes(SHAPES[shape].programs(contexts, fenced), model)


# ---------------------------------------------------------------------------
# allowed-outcome enumerator: textbook truth tables
# ---------------------------------------------------------------------------

def test_mp_truth_table():
    tso = outcomes("mp", OrderingModel.TSO)
    assert (1, 0) not in tso            # flag set, data stale: forbidden
    assert {(0, 0), (0, 1), (1, 1)} == tso
    assert (1, 0) in outcomes("mp", OrderingModel.RELAXED)
    assert (1, 0) not in outcomes("mp", OrderingModel.RELAXED, fenced=True)


def test_sb_truth_table():
    """SB is the shape that splits SC from TSO."""
    assert (0, 0) in outcomes("sb", OrderingModel.TSO)
    assert (0, 0) not in outcomes("sb", OrderingModel.SC)
    assert (0, 0) not in outcomes("sb", OrderingModel.TSO, fenced=True)


def test_lb_truth_table():
    assert (1, 1) not in outcomes("lb", OrderingModel.TSO)
    assert (1, 1) in outcomes("lb", OrderingModel.RELAXED)
    assert (1, 1) not in outcomes("lb", OrderingModel.RELAXED, fenced=True)


def test_corr_truth_table():
    assert (1, 0) not in outcomes("corr", OrderingModel.TSO)
    assert (1, 0) in outcomes("corr", OrderingModel.RELAXED)
    assert (1, 0) not in outcomes("corr", OrderingModel.RELAXED,
                                  fenced=True)


def test_iriw_truth_table():
    """Readers disagreeing on the write order is forbidden under TSO."""
    disagree = (1, 0, 1, 0)
    assert disagree not in outcomes("iriw", OrderingModel.TSO)
    assert disagree in outcomes("iriw", OrderingModel.RELAXED)
    assert disagree not in outcomes("iriw", OrderingModel.RELAXED,
                                    fenced=True)


def test_models_nest():
    """SC ⊆ TSO ⊆ RELAXED for every shape, fenced and not."""
    for shape in SHAPES:
        for fenced in (False, True):
            sc = outcomes(shape, OrderingModel.SC, fenced)
            tso = outcomes(shape, OrderingModel.TSO, fenced)
            relaxed = outcomes(shape, OrderingModel.RELAXED, fenced)
            assert sc <= tso <= relaxed
            assert sc, f"{shape} has no SC outcome at all"


def test_enumerator_rejects_auto():
    with pytest.raises(ValueError):
        outcomes("mp", OrderingModel.AUTO)


# ---------------------------------------------------------------------------
# ordering-model declaration on the config
# ---------------------------------------------------------------------------

def test_resolved_ordering_model():
    assert (base_machine().lsq.resolved_ordering_model
            is OrderingModel.TSO)
    assert (membar_machine().lsq.resolved_ordering_model
            is OrderingModel.RELAXED)
    explicit = base_machine(ordering_model=OrderingModel.SC)
    assert explicit.lsq.resolved_ordering_model is OrderingModel.SC


# ---------------------------------------------------------------------------
# generator: determinism, structure, name round-trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", [
    "litmus/mp", "litmus/mp+fence", "litmus/sb@2:rr",
    "litmus/iriw:pad2:spread", "litmus/corr@3", "litmus/lb+fence@4",
])
def test_spec_names_round_trip(name):
    assert parse_litmus_name(name).name == name


@pytest.mark.parametrize("bad", [
    "litmus/", "litmus/unknown", "litmus/mp@9", "litmus/mp:pad99",
    "litmus/iriw@2",   # below the shape's context minimum
])
def test_bad_names_rejected(bad):
    with pytest.raises(ValueError):
        parse_litmus_name(bad)


def test_generator_is_deterministic():
    spec = LitmusSpec(shape="mp", padding=1)
    first, meta_a = generate_litmus(spec, n_instructions=300, seed=7)
    second, meta_b = generate_litmus(spec, n_instructions=300, seed=7)
    assert [i.pc for i in first] == [i.pc for i in second]
    assert [i.addr for i in first] == [i.addr for i in second]
    assert meta_a == meta_b
    third, _ = generate_litmus(spec, n_instructions=300, seed=8)
    assert [i.addr for i in first] != [i.addr for i in third] or \
        [i.pc for i in first] != [i.pc for i in third]


def test_instances_are_whole_with_fresh_addresses():
    spec = LitmusSpec(shape="iriw", fenced=True)
    trace, meta = generate_litmus(spec, n_instructions=200, seed=0)
    per_instance = sum(
        len(p) for p in SHAPES["iriw"].programs(meta.contexts, True))
    assert len(trace) == per_instance * len(meta.instances)
    seen_addrs = set()
    for instance in meta.instances:
        assert all(index >= 0 for index in instance.loads)
        assert all(index >= 0 for index in instance.stores)
        addrs = {trace[index].addr for index in instance.stores}
        assert not (addrs & seen_addrs)   # fresh variables every instance
        seen_addrs |= addrs
    fences = sum(1 for inst in trace if inst.op is OpClass.MEMBAR)
    assert fences == 2 * len(meta.instances)   # one per reader context


def test_round_robin_interleaving():
    merged = interleave_streams([["a0", "a1"], ["b0"], ["c0", "c1"]],
                                "round_robin", None)
    assert merged == ["a0", "b0", "c0", "a1", "c1"]


# ---------------------------------------------------------------------------
# the full battery: >=5 shapes x fenced/unfenced x >=8 seeds, all clean
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_full_battery_under_tso():
    """Acceptance: the whole battery passes under the declared model."""
    battery = run_battery(preset_machine("techniques", ports=1),
                          seeds=range(8), n_instructions=240)
    assert len(battery.reports) == len(SHAPES) * 2 * 8
    assert battery.model is OrderingModel.TSO
    assert battery.ok, "\n".join(
        r.format() for r in battery.reports if not r.ok)
    # The sweep is not vacuous: cells commit instances and the random
    # interleavings surface more than one outcome overall.
    assert all(r.instances > 0 for r in battery.reports)
    assert any(len(r.counts) > 1 for r in battery.reports)


@pytest.mark.slow
def test_relaxed_battery_on_membar_machine():
    """The Section 2.2 software-ordering design declares RELAXED; its
    fenced battery still commits only fence-ordered outcomes."""
    battery = run_battery(membar_machine(), seeds=range(4),
                          n_instructions=240)
    assert battery.model is OrderingModel.RELAXED
    assert battery.ok, "\n".join(
        r.format() for r in battery.reports if not r.ok)


def test_observed_outcomes_are_sequentially_consistent():
    """Single-stream commit means clean runs land inside SC — the
    strictest model — so holding them to TSO can never be vacuous."""
    report = run_litmus(LitmusSpec(shape="sb"),
                        preset_machine("conventional"),
                        seed=3, model=OrderingModel.SC)
    assert report.ok, report.format()


# ---------------------------------------------------------------------------
# the checker fails loudly
# ---------------------------------------------------------------------------

def doctored_run(outcome):
    """A real MP run whose first instance's verdicts are doctored to
    produce ``outcome`` (1 = saw the store, 0 = initial value)."""
    spec = LitmusSpec(shape="mp")
    trace, meta = generate_litmus(spec, n_instructions=120, seed=0)
    checker = ValidationChecker(raise_on_error=False)
    processor = Processor(preset_machine("conventional"), checker=checker)
    processor.run(trace)
    verdicts = dict(checker.load_verdicts)
    first = meta.instances[0]
    for role, value in enumerate(outcome):
        store_index = first.stores[meta.load_vars[role]]
        verdicts[first.loads[role]] = (
            store_index if value else None, None)
    return meta, verdicts, processor


def test_forbidden_outcome_produces_witness_and_bundle():
    meta, verdicts, processor = doctored_run((1, 0))   # MP's forbidden pair
    report = check_outcomes(meta, verdicts, OrderingModel.TSO,
                            processor=processor)
    assert not report.ok
    assert len(report.witnesses) == 1
    witness = report.witnesses[0]
    assert witness.outcome == (1, 0)
    assert "forbidden" in witness.detail
    assert witness.bundle is not None
    assert "FORBIDDEN" in report.format()


def test_forbidden_outcome_raises_when_asked():
    meta, verdicts, processor = doctored_run((1, 0))
    with pytest.raises(LitmusViolation) as excinfo:
        check_outcomes(meta, verdicts, OrderingModel.TSO,
                       processor=processor, raise_on_forbidden=True)
    assert excinfo.value.bundle is not None


def test_alien_value_is_always_forbidden():
    """A load observing a store from outside its instance can never be
    an allowed outcome."""
    spec = LitmusSpec(shape="mp")
    _, meta = generate_litmus(spec, n_instructions=120, seed=0)
    checker_verdicts = {}
    first, second = meta.instances[0], meta.instances[1]
    checker_verdicts[first.loads[0]] = (second.stores[0], None)  # alien
    checker_verdicts[first.loads[1]] = (None, None)
    report = check_outcomes(meta, checker_verdicts, OrderingModel.RELAXED)
    assert report.incomplete == len(meta.instances) - 1
    assert len(report.witnesses) == 1
    assert ALIEN in report.witnesses[0].outcome


def test_fault_injected_forbidden_outcome_end_to_end():
    """Acceptance: an injected violation makes the checker fail loudly.

    Forcing MP's data load to skip the store-queue search (while the
    flag load forwards normally) commits the textbook forbidden
    ``flag=1, data=0`` — the litmus checker must catch it even though
    it is a *value* corruption the shape was designed to expose."""
    trace, meta = generate_litmus(LitmusSpec(shape="mp"),
                                  n_instructions=240, seed=0)
    checker = ValidationChecker(raise_on_error=False)
    processor = Processor(preset_machine("conventional"), checker=checker)
    SkipSqSearchFault(seed=0, rate=0.5).install(processor)
    processor.run(trace)
    report = check_outcomes(meta, checker.load_verdicts, OrderingModel.TSO,
                            processor=processor)
    assert (1, 0) in report.counts
    assert report.witnesses
    assert report.witnesses[0].bundle is not None
    # The oracle saw the same corruption its own way.
    assert checker.failures


# ---------------------------------------------------------------------------
# fault campaigns over the battery: proof of detection
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("preset", ["conventional", "techniques"])
def test_litmus_fault_campaign_never_silent(preset):
    campaigns = run_litmus_fault_campaign(
        preset_machine(preset), shapes=("mp", "corr"), seeds=(0, 1),
        n_instructions=200, rate=0.5)
    assert set(campaigns) == {"drop-membar", "corrupt-nilp"}
    fired = {name: 0 for name in campaigns}
    for name, reports in campaigns.items():
        for report in reports:
            assert report.ok, report.format()
            assert not report.counts.get("unresolved")
            fired[name] += len(report.outcomes)
    # Not vacuous: both classes inject on litmus traffic.
    assert fired["drop-membar"] > 0
    assert fired["corrupt-nilp"] > 0


def test_membar_drop_is_recovered_on_litmus_traffic():
    """Dropping barriers on fenced litmus traffic lets loads issue
    early; the store's LQ search catches the premature ones, so the
    campaign shows real recoveries (never silences)."""
    campaigns = run_litmus_fault_campaign(
        preset_machine("conventional"), fault_names=("drop-membar",),
        shapes=("mp", "corr"), seeds=(0, 1), n_instructions=200, rate=0.5)
    recovered = sum(report.counts.get("recovered", 0)
                    for report in campaigns["drop-membar"])
    assert recovered > 0
    assert all(report.ok for report in campaigns["drop-membar"])


# ---------------------------------------------------------------------------
# litmus cells as first-class benchmarks
# ---------------------------------------------------------------------------

def test_generate_trace_dispatches_litmus_names():
    trace = generate_trace("litmus/mp+fence", n_instructions=120, seed=2)
    assert trace.name == "litmus/mp+fence"
    assert any(inst.op is OpClass.MEMBAR for inst in trace)
    direct, _ = generate_litmus(parse_litmus_name("litmus/mp+fence"),
                                n_instructions=120, seed=2)
    assert [i.pc for i in trace] == [i.pc for i in direct]


def test_engine_caches_litmus_cells(tmp_path):
    from repro.harness.engine import Cell, ResultCache, SweepEngine

    def cell():
        return Cell(benchmark="litmus/sb", seed=1, n_instructions=160,
                    machine=preset_machine("conventional"))

    first = SweepEngine(cache=ResultCache(tmp_path)).run_cell(cell())
    second = SweepEngine(cache=ResultCache(tmp_path)).run_cell(cell())
    assert not first.cached and second.cached
    assert first.result.stats == second.result.stats


# ---------------------------------------------------------------------------
# CLI: exit codes and the smoke slice
# ---------------------------------------------------------------------------

def run_cli(argv):
    try:
        cli.main(argv)
    except SystemExit as error:
        return error.code or 0
    return 0


def test_cli_litmus_smoke_passes(capsys):
    assert run_cli(["litmus", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "litmus/mp" in out and "litmus/sb+fence" in out
    assert "drop-membar" in out


def test_cli_litmus_exit_codes(capsys, monkeypatch):
    # Usage errors: argparse's own exit code 2.
    assert run_cli(["litmus", "bogus-shape"]) == cli.EXIT_USAGE
    assert run_cli(["litmus", "mp", "--seed-range", "5:2"]) == cli.EXIT_USAGE
    # A clean single cell exits 0.
    assert run_cli(["litmus", "mp", "--seed-range", "0:2",
                    "-n", "120"]) == 0

    # Forbidden outcomes exit 3: doctor the battery runner.
    import repro.litmus as litmus_pkg

    real_run_battery = litmus_pkg.run_battery

    def forbidden_battery(machine, **kwargs):
        battery = real_run_battery(machine, **kwargs)
        meta, verdicts, processor = doctored_run((1, 0))
        battery.reports.append(check_outcomes(
            meta, verdicts, OrderingModel.TSO, processor=processor))
        return battery

    monkeypatch.setattr(litmus_pkg, "run_battery", forbidden_battery)
    assert run_cli(["litmus", "mp", "--seed-range", "0:1",
                    "-n", "120"]) == cli.EXIT_FORBIDDEN

    # A watchdog trip exits 4.
    from repro.validate import SimulationDeadlock

    def hung_battery(machine, **kwargs):
        raise SimulationDeadlock("no commit in 10000 cycles")

    monkeypatch.setattr(litmus_pkg, "run_battery", hung_battery)
    assert run_cli(["litmus", "mp"]) == cli.EXIT_WATCHDOG


def test_cli_run_accepts_litmus_benchmark(capsys):
    assert run_cli(["run", "litmus/corr", "-n", "160",
                    "--lsq", "techniques"]) == 0
    assert "litmus/corr" in capsys.readouterr().out


def test_cli_seed_range_parser():
    assert cli._parse_seed_range("0:4") == [0, 1, 2, 3]
    assert cli._parse_seed_range("7") == [7]
    with pytest.raises(SystemExit):
        cli._parse_seed_range("4:4")
    with pytest.raises(SystemExit):
        cli._parse_seed_range("a:b")
