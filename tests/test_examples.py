"""Smoke tests: every shipped example runs end to end on tiny inputs."""

import sys

import pytest


def run_example(monkeypatch, module_name, argv):
    monkeypatch.setattr(sys, "argv", argv)
    sys.path.insert(0, "examples")
    try:
        for name in ("quickstart", "reproduce_paper", "design_explorer",
                     "custom_workload", "complexity_report"):
            sys.modules.pop(name, None)
        module = __import__(module_name)
        module.main()
    finally:
        sys.path.remove("examples")


def test_quickstart(monkeypatch, capsys):
    run_example(monkeypatch, "quickstart", ["quickstart.py", "gzip", "800"])
    out = capsys.readouterr().out
    assert "IPC" in out and "SQ searches" in out


def test_reproduce_paper_lists_experiments(monkeypatch, capsys):
    run_example(monkeypatch, "reproduce_paper", ["reproduce_paper.py"])
    out = capsys.readouterr().out
    assert "fig10" in out and "table2" in out


def test_reproduce_paper_runs_one(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_SUBSET", "gzip,mgrid")
    monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "600")
    run_example(monkeypatch, "reproduce_paper",
                ["reproduce_paper.py", "table4"])
    out = capsys.readouterr().out
    assert "Table 4" in out


def test_reproduce_paper_unknown_experiment(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_SUBSET", "gzip")
    run_example(monkeypatch, "reproduce_paper",
                ["reproduce_paper.py", "fig99"])
    assert "unknown experiment" in capsys.readouterr().out


def test_design_explorer(monkeypatch, capsys):
    run_example(monkeypatch, "design_explorer",
                ["design_explorer.py", "gzip", "700"])
    out = capsys.readouterr().out
    assert "Cheapest design" in out


def test_custom_workload(monkeypatch, capsys):
    run_example(monkeypatch, "custom_workload",
                ["custom_workload.py", "900"])
    out = capsys.readouterr().out
    assert "oltp-toy" in out and "IPC" in out


def test_complexity_report(monkeypatch, capsys):
    run_example(monkeypatch, "complexity_report",
                ["complexity_report.py", "gzip", "700"])
    out = capsys.readouterr().out
    assert "CAM area" in out and "Dominant pressure" in out
