"""Tests for the hot-path overhaul: bounded memory, O(1) counters, the
candidate index, search itineraries, the perf baseline, and SIM-H.

The golden-digest suite (``test_golden_parity.py``) proves the indexed
rewrite is *bit-identical*; the tests here pin the host-side contracts
the rewrite introduced — the live window stays bounded, the incremental
counters never drift from a recount, the granule index tracks
allocate/commit/squash exactly, and the committed perf baseline's
report format feeds the regression gate.
"""

import random

from repro.config import AllocationPolicy
from repro.core.load_buffer import LoadBuffer
from repro.core.queues import GRANULE_SHIFT, SegmentedQueue
from repro.pipeline.dyninst import DynInst
from tests.conftest import load, store


def make_entry(seq, addr=None, is_store=False, size=8):
    inst = (store(addr if addr is not None else 8 * seq, pc=4 * seq,
                  size=size)
            if is_store else
            load(addr if addr is not None else 8 * seq, pc=4 * seq,
                 size=size))
    return DynInst(seq, seq, inst)


def make_queue(segments=4, entries=4,
               policy=AllocationPolicy.SELF_CIRCULAR):
    return SegmentedQueue("Q", segments, entries, policy)


# ---------------------------------------------------------------------------
# bounded memory: the live window never outgrows occupancy
# ---------------------------------------------------------------------------

class TestBoundedMemory:
    def test_order_stays_bounded_over_long_run(self):
        """Regression: ``_order`` used to grow unboundedly (commit moved
        a head cursor instead of releasing storage)."""
        q = make_queue(segments=2, entries=4)
        seq = 0
        for __ in range(200):
            while q.can_allocate():
                q.allocate(make_entry(seq))
                seq += 1
            while not q.empty:
                q.commit_head(q.oldest)
            assert len(q._order) <= q.capacity
        assert len(q._order) == 0
        assert q._granules == {}

    def test_order_bounded_under_squash_churn(self):
        rng = random.Random(7)
        q = make_queue(segments=4, entries=2)
        seq = 0
        for __ in range(500):
            action = rng.random()
            if action < 0.5 and q.can_allocate():
                q.allocate(make_entry(seq, addr=8 * (seq % 16)))
                seq += 1
            elif action < 0.75 and not q.empty:
                q.commit_head(q.oldest)
            elif not q.empty:
                victim = rng.choice(list(q.entries())).seq
                for inst in q.squash_from(victim):
                    inst.state = inst.state  # squashed list only
            assert len(q._order) <= q.capacity
            assert len(q._order) == len(q)


# ---------------------------------------------------------------------------
# O(1) counters match a recount
# ---------------------------------------------------------------------------

class TestIncrementalCounters:
    def test_counters_match_recount_under_churn(self):
        rng = random.Random(11)
        q = make_queue(segments=4, entries=3)
        seq = 0
        for __ in range(600):
            action = rng.random()
            if action < 0.55 and q.can_allocate():
                q.allocate(make_entry(seq, addr=8 * (seq % 8),
                                      is_store=bool(seq % 3 == 0)))
                seq += 1
            elif action < 0.8 and not q.empty:
                q.commit_head(q.oldest)
            elif not q.empty:
                q.squash_from(rng.choice(list(q.entries())).seq)
            live = list(q.entries())
            assert q.live_loads == sum(1 for e in live if e.is_load)
            assert q.occupied_segments() == sum(
                1 for seg in q.segment_contents() if seg)

    def test_load_buffer_len_is_incremental(self):
        buf = LoadBuffer(3)
        loads = [make_entry(i) for i in range(3)]
        for i, entry in enumerate(loads):
            buf.insert(entry)
            assert len(buf) == i + 1
        assert buf.full
        buf.release(loads[1])
        assert len(buf) == 2 and not buf.full
        buf.release(loads[1])  # double release is a no-op
        assert len(buf) == 2
        buf.squash_from(loads[2].seq)
        assert len(buf) == 1
        assert len(buf) == sum(1 for s in buf.slots() if s is not None)


# ---------------------------------------------------------------------------
# search itineraries and the candidate index
# ---------------------------------------------------------------------------

class TestPathsAndIndex:
    def test_paths_agree_with_reference_plans(self):
        rng = random.Random(3)
        for policy in (AllocationPolicy.SELF_CIRCULAR,
                       AllocationPolicy.NO_SELF_CIRCULAR):
            q = make_queue(segments=4, entries=2, policy=policy)
            seq = 0
            for __ in range(300):
                action = rng.random()
                if action < 0.5 and q.can_allocate():
                    q.allocate(make_entry(seq))
                    seq += 1
                elif action < 0.8 and not q.empty:
                    q.commit_head(q.oldest)
                elif not q.empty:
                    q.squash_from(rng.choice(list(q.entries())).seq)
                probe = seq - rng.randrange(0, q.capacity + 1)
                assert q.backward_path(probe) == [
                    segment for segment, __e in q.backward_plan(probe)]
                assert q.forward_path(probe) == [
                    segment for segment, __e in q.forward_plan(probe)]

    def test_granule_index_tracks_membership_exactly(self):
        rng = random.Random(5)
        q = make_queue(segments=2, entries=4)
        seq = 0
        for __ in range(400):
            action = rng.random()
            if action < 0.5 and q.can_allocate():
                q.allocate(make_entry(seq, addr=4 * (seq % 10),
                                      size=rng.choice((4, 8, 16))))
                seq += 1
            elif action < 0.75 and not q.empty:
                q.commit_head(q.oldest)
            elif not q.empty:
                q.squash_from(rng.choice(list(q.entries())).seq)
            live = list(q.entries())
            # Every bucket is seq-sorted and holds only live entries
            # that actually touch the granule.
            for granule, bucket in q._granules.items():
                seqs = [e.seq for e in bucket]
                assert seqs == sorted(seqs)
                for e in bucket:
                    assert e in live
                    first = e.addr >> GRANULE_SHIFT
                    last = (e.addr + e.size - 1) >> GRANULE_SHIFT
                    assert first <= granule <= last
            # ...and every live entry is present in all its granules.
            for e in live:
                for granule in range(e.addr >> GRANULE_SHIFT,
                                     ((e.addr + e.size - 1)
                                      >> GRANULE_SHIFT) + 1):
                    assert e in q._granules[granule]

    def test_candidate_lists_cover_all_overlaps(self):
        q = make_queue(segments=2, entries=4)
        entries = [make_entry(0, addr=0, size=8),
                   make_entry(1, addr=6, size=4),
                   make_entry(2, addr=64, size=8)]
        for e in entries:
            q.allocate(e)
        probe = make_entry(9, addr=4, size=8)
        found = {e.seq for bucket in q.candidate_lists(4, 8)
                 for e in bucket}
        overlapping = {e.seq for e in entries if e.overlaps(probe)}
        assert overlapping <= found
        assert 2 not in found  # far-away granule is never visited

    def test_entries_is_zero_copy_program_order(self):
        q = make_queue(segments=2, entries=2)
        made = [make_entry(i) for i in range(3)]
        for e in made:
            q.allocate(e)
        view = q.entries()
        assert not isinstance(view, list)  # regression: was a fresh slice
        assert list(view) == made
        q.commit_head(made[0])
        q.squash_from(made[2].seq)
        assert list(q.entries()) == [made[1]]


# ---------------------------------------------------------------------------
# perf baseline report
# ---------------------------------------------------------------------------

class TestBaselineReport:
    def test_report_shape_and_self_diff(self):
        from repro.cli import PRESETS, base_machine
        from repro.harness.engine import Cell, baseline_report, diff_reports
        from dataclasses import replace

        machine = replace(base_machine(), lsq=PRESETS["conventional"](ports=2))
        cells = [Cell(benchmark="gzip", machine=machine, seed=0,
                      n_instructions=300, label="conventional-2p")]
        report = baseline_report(cells, reps=1)
        assert report["kind"] == "core-baseline"
        assert report["calibration_s"] > 0
        (row,) = report["cells"]
        for key in ("benchmark", "label", "seed", "n_instructions",
                    "ipc", "sim_s", "cycles_per_sec", "alloc_peak_kb",
                    "alloc_blocks"):
            assert key in row
        assert row["alloc_peak_kb"] > 0
        assert row["alloc_blocks"] > 0
        # The report feeds the same gate as sweep reports: a baseline
        # never regresses against itself, and a slower rerun is caught.
        assert diff_reports(report, report) == []
        slower = {"cells": [dict(row, sim_s=row["sim_s"] * 10)]}
        assert diff_reports(report, slower)

    def test_aggregate_wall_gates_the_total(self):
        from repro.harness.engine import diff_reports

        def cell(label, sim_s, ipc=1.0):
            return {"benchmark": "b", "label": label, "seed": 0,
                    "n_instructions": 100, "sim_s": sim_s, "ipc": ipc}

        old = {"cells": [cell("x", 0.10), cell("y", 0.10)]}
        # One cell +50%, the other -40%: per-cell flags it, but the
        # total (0.20s -> 0.21s) is inside the 20% budget.
        new = {"cells": [cell("x", 0.15), cell("y", 0.06)]}
        assert diff_reports(old, new)
        assert diff_reports(old, new, aggregate_wall=True) == []
        # A real slowdown still fails on the total...
        worse = {"cells": [cell("x", 0.15), cell("y", 0.15)]}
        (problem,) = diff_reports(old, worse, aggregate_wall=True)
        assert problem.startswith("total:")
        # ...and IPC drift stays per-cell under aggregation.
        drift = {"cells": [cell("x", 0.10, ipc=1.5), cell("y", 0.10)]}
        assert diff_reports(old, drift, aggregate_wall=True)


# ---------------------------------------------------------------------------
# SIM-H: hotpath allocation discipline
# ---------------------------------------------------------------------------

class TestHotpathRule:
    @staticmethod
    def _lint(tmp_path, source):
        import textwrap

        from repro.analyze import analyze_paths
        (tmp_path / "mod.py").write_text(textwrap.dedent(source))
        return analyze_paths([str(tmp_path)], root=str(tmp_path))

    def test_comprehensions_in_hotpath_flagged(self, tmp_path):
        findings = self._lint(tmp_path, """
            from repro.core.hotpath import hotpath

            @hotpath
            def churn(xs):
                ys = [x + 1 for x in xs]
                zs = {x for x in xs}
                ds = {x: 1 for x in xs}
                return ys, zs, ds
        """)
        assert [f.rule for f in findings] == ["SIM-H001"] * 3

    def test_generator_expression_flagged(self, tmp_path):
        findings = self._lint(tmp_path, """
            from repro.core import hotpath

            @hotpath.hotpath
            def churn(xs):
                return sum(x for x in xs)
        """)
        assert [f.rule for f in findings] == ["SIM-H002"]

    def test_undecorated_function_clean(self, tmp_path):
        findings = self._lint(tmp_path, """
            def cold(xs):
                return [x for x in xs], sum(x for x in xs)
        """)
        assert findings == []

    def test_suppression_works(self, tmp_path):
        findings = self._lint(tmp_path, """
            from repro.core.hotpath import hotpath

            @hotpath
            def justified(xs):
                # one allocation per squash, not per cycle:
                return [x for x in xs]  # sim-lint: ignore[SIM-H001]
        """)
        assert findings == []

    def test_hot_modules_are_simh_clean(self):
        """The simulator's own decorated hot paths must stay clean."""
        import os

        import repro
        from repro.analyze import analyze_paths
        tree = os.path.dirname(repro.__file__)
        findings = [f for f in analyze_paths([tree])
                    if f.rule.startswith("SIM-H")]
        assert findings == []
