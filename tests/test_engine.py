"""Tests for the parallel, disk-cached sweep engine.

Covers the ISSUE's acceptance criteria directly: cached and fresh runs
are bit-identical, the parallel path matches the serial path, a second
process reuses the first one's cache, and the cache key separates cells
that differ only in seed or run length.
"""

import dataclasses
import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import base_machine
from repro.harness.engine import (
    Cell,
    ResultCache,
    SweepEngine,
    code_version,
    config_fingerprint,
    diff_reports,
    profile_cell,
    sweep_report,
)
from repro.obs import ObsConfig

REPO_ROOT = Path(__file__).resolve().parent.parent


def cell(benchmark="gzip", seed=0, n_instructions=600, validate=False,
         **lsq):
    return Cell(benchmark=benchmark, machine=base_machine(**lsq),
                seed=seed, n_instructions=n_instructions,
                validate=validate)


def stats_of(cell_result):
    return dataclasses.asdict(cell_result.result.stats)


class TestCacheKey:
    def test_digest_is_stable(self):
        assert cell().digest() == cell().digest()

    def test_config_fingerprint_distinguishes_machines(self):
        assert config_fingerprint(base_machine()) \
            != config_fingerprint(base_machine(search_ports=1))

    def test_digest_covers_seed(self):
        assert cell(seed=0).digest() != cell(seed=1).digest()

    def test_digest_covers_n_instructions(self):
        assert cell(n_instructions=600).digest() \
            != cell(n_instructions=1200).digest()

    def test_digest_covers_benchmark_and_config(self):
        digests = {cell().digest(), cell(benchmark="mgrid").digest(),
                   cell(search_ports=1).digest(),
                   cell(validate=True).digest()}
        assert len(digests) == 4

    def test_digest_ignores_label(self):
        tagged = dataclasses.replace(cell(), label="base-2p")
        assert tagged.digest() == cell().digest()

    def test_digest_covers_code_version(self, monkeypatch):
        before = cell().digest()
        monkeypatch.setenv("REPRO_CODE_VERSION", "something-else")
        monkeypatch.setattr("repro.harness.engine._code_version", None)
        assert cell().digest() != before

    def test_code_version_is_cached_per_process(self):
        assert code_version() == code_version()


class TestDiskCache:
    def test_fresh_and_cached_runs_bit_identical(self, tmp_path):
        first = SweepEngine(cache=ResultCache(tmp_path))
        fresh = first.run_cell(cell())
        second = SweepEngine(cache=ResultCache(tmp_path))
        cached = second.run_cell(cell())
        assert not fresh.cached and cached.cached
        assert second.simulated == 0
        assert stats_of(fresh) == stats_of(cached)

    def test_corrupt_entry_is_a_miss_and_repaired(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        engine.run_cell(cell())
        path = cache.path_for(cell().digest())
        path.write_bytes(b"not a pickle")
        redone = SweepEngine(cache=ResultCache(tmp_path)).run_cell(cell())
        assert not redone.cached
        with open(path, "rb") as handle:
            pickle.load(handle)  # rewritten entry is valid again

    def test_no_cache_engine_always_simulates(self, tmp_path):
        engine = SweepEngine(cache=None)
        engine.run_cell(cell())
        engine.run_cell(cell())
        assert engine.simulated == 2

    def test_two_runner_identities_do_not_collide(self, tmp_path):
        """Cells differing only in seed or run length sharing one cache
        directory must stay distinct (the old (benchmark, machine) key
        conflated them)."""
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        a = engine.run_cell(cell(seed=0))
        b = engine.run_cell(cell(seed=3))
        c = engine.run_cell(cell(n_instructions=1200))
        assert engine.simulated == 3
        assert stats_of(a) != stats_of(b)
        assert c.result.stats.committed > a.result.stats.committed

    def test_validation_summary_survives_the_cache(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        fresh = engine.run_cell(cell(validate=True))
        cached = SweepEngine(cache=ResultCache(tmp_path)) \
            .run_cell(cell(validate=True))
        assert fresh.validation is not None and cached.cached
        assert cached.validation == fresh.validation
        assert fresh.validation.checked_loads > 0


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


class TestStoreFaultInjection:
    """``ResultCache.store`` must not leak the mkstemp descriptor or
    orphan the temp file when serialization blows up mid-write."""

    def _store_args(self, tmp_path):
        engine = SweepEngine(cache=None)
        done = engine.run_cell(cell())
        cache = ResultCache(tmp_path / "cache")
        return cache, cell().digest(), done

    def test_pickle_failure_leaves_no_debris(self, tmp_path,
                                             monkeypatch):
        cache, digest, done = self._store_args(tmp_path)
        before = _open_fds()

        def boom(*_args, **_kwargs):
            raise pickle.PicklingError("injected")

        monkeypatch.setattr(pickle, "dump", boom)
        for _ in range(20):
            with pytest.raises(pickle.PicklingError):
                cache.store(digest, done.result, done.sim_s,
                            done.validation)
        monkeypatch.undo()
        stray = [p for p in cache.root.rglob(".tmp-*")]
        assert stray == [], f"orphaned temp files: {stray}"
        assert _open_fds() == before, "descriptor leak across failures"
        # and the entry was never half-written
        assert cache.load(digest) is None

    def test_fdopen_failure_closes_raw_descriptor(self, tmp_path,
                                                  monkeypatch):
        cache, digest, done = self._store_args(tmp_path)
        before = _open_fds()

        def boom(*_args, **_kwargs):
            raise OSError("injected fdopen failure")

        monkeypatch.setattr(os, "fdopen", boom)
        for _ in range(20):
            with pytest.raises(OSError):
                cache.store(digest, done.result, done.sim_s,
                            done.validation)
        monkeypatch.undo()
        assert list(cache.root.rglob(".tmp-*")) == []
        assert _open_fds() == before

    def test_store_still_works_after_failures(self, tmp_path,
                                              monkeypatch):
        cache, digest, done = self._store_args(tmp_path)

        def boom(*_args, **_kwargs):
            raise pickle.PicklingError("injected")

        monkeypatch.setattr(pickle, "dump", boom)
        with pytest.raises(pickle.PicklingError):
            cache.store(digest, done.result, done.sim_s, done.validation)
        monkeypatch.undo()
        cache.store(digest, done.result, done.sim_s, done.validation)
        payload = cache.load(digest)
        assert payload is not None
        assert payload.result.stats == done.result.stats


class TestConcurrentCacheWrites:
    def test_racing_writers_both_succeed_bit_identical(self, tmp_path):
        """Two processes released by a barrier store the same digest at
        the same instant: both must succeed, and the surviving entry
        must be a valid, complete pickle (atomic tempfile+rename, never
        an in-place write)."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        engine = SweepEngine(cache=None)
        done = engine.run_cell(cell())
        digest = cell().digest()
        cache_dir = tmp_path / "cache"
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()

        def writer():
            try:
                local = ResultCache(cache_dir)
                barrier.wait(timeout=30)
                for _ in range(50):
                    local.store(digest, done.result, done.sim_s, None)
            except BaseException as error:  # noqa: BLE001 — reported
                errors.put(f"{type(error).__name__}: {error}")

        procs = [ctx.Process(target=writer) for _ in range(2)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        assert failures == []
        assert all(proc.exitcode == 0 for proc in procs)

        reader = ResultCache(cache_dir)
        payload = reader.load(digest)
        assert payload is not None
        assert payload.result.stats == done.result.stats
        # no temp debris survived the race
        assert list(reader.root.rglob(".tmp-*")) == []


class TestParallel:
    CELLS = None

    def _cells(self):
        return [cell(benchmark=name, seed=seed)
                for name in ("gzip", "mgrid") for seed in (0, 1)]

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = SweepEngine(jobs=1).run_cells(self._cells())
        parallel = SweepEngine(jobs=2).run_cells(self._cells())
        assert [stats_of(r) for r in serial] \
            == [stats_of(r) for r in parallel]

    def test_parallel_preserves_input_order(self):
        cells = self._cells()
        results = SweepEngine(jobs=2).run_cells(cells)
        assert [r.cell for r in results] == cells

    def test_mixed_hits_and_misses(self, tmp_path):
        cells = self._cells()
        warm = SweepEngine(cache=ResultCache(tmp_path))
        warm.run_cell(cells[0])
        engine = SweepEngine(jobs=2, cache=ResultCache(tmp_path))
        results = engine.run_cells(cells)
        assert results[0].cached
        assert engine.simulated == len(cells) - 1
        assert engine.cache.hits == 1

    def test_progress_callback_sees_every_cell(self):
        seen = []
        SweepEngine(jobs=2).run_cells(
            self._cells(),
            progress=lambda r, done, total: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestSweepReport:
    def test_report_shape(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        results = engine.run_cells([cell(), cell(seed=1)])
        report = sweep_report(results, jobs=1, cache=engine.cache,
                              wall_s=1.25)
        assert report["n_cells"] == 2 and report["simulated"] == 2
        assert report["cache"]["enabled"]
        assert report["cache"]["misses"] == 2
        for row in report["cells"]:
            assert set(row) >= {"benchmark", "seed", "ipc", "sim_s",
                                "wall_s", "cached", "digest"}
        json.dumps(report)  # machine-readable for real


class TestObsCache:
    """A traced run must never poison the cache of an untraced run —
    the obs configuration is part of the cell's content address."""

    def test_digest_covers_obs_config(self):
        plain = cell()
        traced = dataclasses.replace(plain, obs=ObsConfig())
        resampled = dataclasses.replace(plain,
                                        obs=ObsConfig(sample_interval=32))
        assert len({plain.digest(), traced.digest(),
                    resampled.digest()}) == 3

    def test_traced_run_does_not_poison_untraced_cache(self, tmp_path):
        engine = SweepEngine(cache=ResultCache(tmp_path))
        traced = engine.run_cell(dataclasses.replace(cell(),
                                                     obs=ObsConfig()))
        plain = engine.run_cell(cell())
        assert engine.simulated == 2  # second run was a genuine miss
        assert traced.obs is not None and plain.obs is None
        assert stats_of(traced) == stats_of(plain)  # obs parity holds too

    def test_obs_summary_survives_the_cache(self, tmp_path):
        traced = dataclasses.replace(cell(), obs=ObsConfig())
        fresh = SweepEngine(cache=ResultCache(tmp_path)).run_cell(traced)
        cached = SweepEngine(cache=ResultCache(tmp_path)).run_cell(traced)
        assert cached.cached
        assert fresh.obs is not None and cached.obs == fresh.obs
        assert fresh.obs.cycles > 0 and fresh.obs.samples

    def test_parallel_obs_matches_serial(self):
        cells = [dataclasses.replace(cell(benchmark=name),
                                     obs=ObsConfig())
                 for name in ("gzip", "mgrid")]
        serial = SweepEngine(jobs=1).run_cells(cells)
        parallel = SweepEngine(jobs=2).run_cells(cells)
        assert [r.obs for r in serial] == [r.obs for r in parallel]

    def test_runner_keys_separate_traced_and_untraced(self, tmp_path):
        from repro.harness.experiment import ExperimentRunner
        engine = SweepEngine(cache=ResultCache(tmp_path))
        machine = base_machine()
        plain = ExperimentRunner(n_instructions=600, engine=engine)
        traced = ExperimentRunner(n_instructions=600, engine=engine,
                                  obs=ObsConfig())
        a = plain.run("gzip", machine)
        b = traced.run("gzip", machine)
        assert engine.simulated == 2
        assert dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)
        assert plain.obs_summary("gzip", machine) is None
        summary = traced.obs_summary("gzip", machine)
        assert summary is not None and summary.cycles == a.stats.cycles


class TestProfile:
    def test_profile_cell_returns_hot_functions(self):
        result, rows = profile_cell(cell(n_instructions=400), top=5)
        assert result.result.stats.committed > 0
        assert 0 < len(rows) <= 5
        for row in rows:
            assert {"function", "calls", "tottime_s", "cumtime_s"} \
                <= set(row)


class TestBenchDiff:
    @staticmethod
    def _report(sim_s=1.0, ipc=1.5):
        return {"cells": [{"benchmark": "gzip", "label": "full-1p",
                           "seed": 0, "n_instructions": 600,
                           "sim_s": sim_s, "ipc": ipc}]}

    def test_identical_reports_pass(self):
        assert diff_reports(self._report(), self._report()) == []

    def test_wall_time_regression_flagged(self):
        problems = diff_reports(self._report(sim_s=1.0),
                                self._report(sim_s=1.3))
        assert len(problems) == 1 and "sim time" in problems[0]

    def test_wall_time_improvement_and_tolerance_ok(self):
        assert diff_reports(self._report(sim_s=1.0),
                            self._report(sim_s=0.5)) == []
        assert diff_reports(self._report(sim_s=1.0),
                            self._report(sim_s=1.15)) == []

    def test_ipc_drift_flagged_both_directions(self):
        for new_ipc in (1.51, 1.49):
            problems = diff_reports(self._report(ipc=1.5),
                                    self._report(ipc=new_ipc))
            assert len(problems) == 1 and "IPC" in problems[0]

    def test_unmatched_cells_are_ignored_but_no_overlap_fails(self):
        other = {"cells": [{"benchmark": "mgrid", "label": "a", "seed": 0,
                            "n_instructions": 600, "sim_s": 9.0,
                            "ipc": 9.0}]}
        both = {"cells": self._report()["cells"] + other["cells"]}
        assert diff_reports(self._report(), both) == []
        assert diff_reports(self._report(), other) \
            == ["no comparable cells between the two reports"]

    def test_script_entry_point(self, tmp_path):
        import runpy
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(self._report(sim_s=1.0)))
        new.write_text(json.dumps(self._report(sim_s=5.0)))
        module = runpy.run_path(
            str(REPO_ROOT / "scripts" / "bench_diff.py"))
        assert module["main"]([str(old), str(old)]) == 0
        assert module["main"]([str(old), str(new)]) == 1
        assert module["main"]([str(old), str(new),
                               "--wall-tol", "10"]) == 0

    @pytest.mark.parametrize("calibration", [
        None,          # pre-calibration baseline: field absent
        0,             # zeroed by hand
        "fast",        # non-numeric garbage
        {"s": 1.0},    # wrong type entirely
    ])
    def test_normalize_survives_malformed_calibration(self, tmp_path,
                                                      calibration,
                                                      capsys):
        """``--normalize`` against an old baseline with a missing or
        malformed ``calibration_s`` falls back to the unnormalized
        comparison with a warning — it must never crash the gate."""
        import runpy
        old_report = self._report(sim_s=1.0)
        if calibration is not None:
            old_report["calibration_s"] = calibration
        new_report = self._report(sim_s=1.0)
        new_report["calibration_s"] = 2.0
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(old_report))
        new.write_text(json.dumps(new_report))
        module = runpy.run_path(
            str(REPO_ROOT / "scripts" / "bench_diff.py"))
        assert module["main"]([str(old), str(new), "--normalize"]) == 0
        captured = capsys.readouterr()
        assert "--normalize ignored" in captured.err
        # the unnormalized gate still fires on a real regression
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(self._report(sim_s=5.0)))
        assert module["main"]([str(old), str(worse),
                               "--normalize"]) == 1

    def test_non_dict_report_is_usage_error(self, tmp_path, capsys):
        import runpy
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps([1, 2, 3]))
        new.write_text(json.dumps(self._report()))
        module = runpy.run_path(
            str(REPO_ROOT / "scripts" / "bench_diff.py"))
        assert module["main"]([str(old), str(new)]) == 2
        assert "not a report object" in capsys.readouterr().err


@pytest.mark.slow
class TestCrossProcess:
    """A second ``repro bench`` invocation is served entirely from the
    first one's disk cache and emits identical per-cell stats."""

    def _bench(self, tmp_path, out_name, *extra):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"))
        out = tmp_path / out_name
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "bench", "--smoke",
             "-o", str(out), *extra],
            cwd=str(REPO_ROOT), env=env,
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        with open(out) as handle:
            return json.load(handle)

    def test_second_invocation_is_all_hits(self, tmp_path):
        first = self._bench(tmp_path, "first.json")
        second = self._bench(tmp_path, "second.json", "--expect-cached")
        assert first["simulated"] == first["n_cells"]
        assert second["simulated"] == 0
        assert second["cache"]["hits"] == second["n_cells"]

        def strip(report):
            return [{k: v for k, v in row.items()
                     if k not in ("sim_s", "wall_s", "cached")}
                    for row in report["cells"]]
        assert strip(first) == strip(second)
