"""Integration tests: full synthetic benchmarks across LSQ designs.

These exercise the whole stack (generator -> caches -> core -> LSQ) on
short runs and check cross-configuration invariants rather than exact
numbers.
"""

import pytest
from dataclasses import replace

from repro.config import (
    AllocationPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    scaled_machine,
    segmented_lsq,
    techniques_lsq,
)
from repro.pipeline.processor import simulate
from repro.workload.synthetic import generate_trace

N = 1500


@pytest.fixture(scope="module")
def traces():
    return {name: generate_trace(name, n_instructions=N)
            for name in ("gzip", "mgrid", "vortex", "mcf")}


ALL_LSQS = {
    "conv-1p": conventional_lsq(ports=1),
    "conv-2p": conventional_lsq(ports=2),
    "conv-4p": conventional_lsq(ports=4),
    "pair": LsqConfig(predictor=PredictorMode.PAIR),
    "aggressive": LsqConfig(predictor=PredictorMode.AGGRESSIVE),
    "perfect": LsqConfig(predictor=PredictorMode.PERFECT),
    "buffer-2": LsqConfig(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                          load_buffer_entries=2),
    "buffer-0": LsqConfig(lq_search=LoadQueueSearchMode.IN_ORDER),
    "inorder-search": LsqConfig(
        lq_search=LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH),
    "tech-1p": techniques_lsq(ports=1),
    "seg-self": segmented_lsq(),
    "seg-noself": segmented_lsq(allocation=AllocationPolicy.NO_SELF_CIRCULAR),
    "all-1p": full_techniques_lsq(ports=1),
}


@pytest.mark.parametrize("lsq_name", list(ALL_LSQS))
@pytest.mark.parametrize("bench", ["gzip", "mgrid"])
def test_every_config_commits_whole_trace(traces, bench, lsq_name):
    machine = replace(base_machine(), lsq=ALL_LSQS[lsq_name])
    result = simulate(traces[bench], machine)
    assert result.stats.committed == N
    assert result.stats.cycles > 0
    assert 0 < result.ipc <= machine.core.issue_width


def test_scaled_machine_runs(traces):
    result = simulate(traces["gzip"], scaled_machine())
    assert result.stats.committed == N


def test_pair_predictor_reduces_sq_searches(traces):
    for bench in ("gzip", "mgrid"):
        base = simulate(traces[bench], base_machine()).stats
        pair = simulate(traces[bench], replace(
            base_machine(), lsq=LsqConfig(predictor=PredictorMode.PAIR))).stats
        assert pair.sq_searches < 0.6 * base.sq_searches


def test_vortex_stays_conservative(traces):
    # vortex's aliased pair groups keep many loads searching — the
    # paper's Figure 6 shows it as the least-reduced benchmark.
    base = simulate(traces["vortex"], base_machine()).stats
    pair = simulate(traces["vortex"], replace(
        base_machine(), lsq=LsqConfig(predictor=PredictorMode.PAIR))).stats
    assert pair.sq_searches > 0.4 * base.sq_searches


def test_load_buffer_reduces_lq_searches(traces):
    for bench in ("gzip", "mgrid"):
        base = simulate(traces[bench], base_machine()).stats
        buf = simulate(traces[bench], replace(
            base_machine(),
            lsq=LsqConfig(lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                          load_buffer_entries=2))).stats
        assert buf.lq_searches < 0.7 * base.lq_searches
        assert buf.load_buffer_searches > 0


def test_one_port_conventional_slower(traces):
    for bench in ("gzip", "mgrid"):
        two = simulate(traces[bench], base_machine()).ipc
        one = simulate(traces[bench], replace(
            base_machine(), lsq=conventional_lsq(ports=1))).ipc
        assert one < two


def test_segmentation_helps_capacity_hungry_fp(traces):
    base = simulate(traces["mgrid"], base_machine()).ipc
    seg = simulate(traces["mgrid"], replace(
        base_machine(), lsq=segmented_lsq())).ipc
    assert seg > base * 1.02


def test_perfect_predictor_never_squashes(traces):
    for bench in ("gzip", "vortex"):
        result = simulate(traces[bench], replace(
            base_machine(), lsq=LsqConfig(predictor=PredictorMode.PERFECT)))
        assert result.stats.store_load_squashes == 0


def test_in_order_loads_never_load_load_squash(traces):
    result = simulate(traces["mgrid"], replace(
        base_machine(), lsq=LsqConfig(lq_search=LoadQueueSearchMode.IN_ORDER)))
    assert result.stats.load_load_squashes == 0
    assert result.stats.ooo_load_cycles == 0


def test_table6_distribution_sums_to_one(traces):
    result = simulate(traces["mgrid"], replace(
        base_machine(), lsq=segmented_lsq()))
    dist = result.stats.segment_search_distribution()
    assert dist
    assert sum(dist.values()) == pytest.approx(1.0)
    assert all(1 <= k <= 4 for k in dist)


def test_occupancy_within_capacity(traces):
    for bench, trace in traces.items():
        stats = simulate(trace, base_machine()).stats
        assert 0 <= stats.avg_lq_occupancy <= 32
        assert 0 <= stats.avg_sq_occupancy <= 32
