"""Unit tests for the address-stream generators."""

import pytest

from repro.workload.addrgen import (
    PointerChaseStream,
    RandomStream,
    StackStream,
    StridedStream,
    paired_streams,
)


class TestStridedStream:
    def test_sequence(self):
        stream = StridedStream(base=1000, stride=8, footprint=32)
        assert [stream.next_address() for _ in range(5)] == \
            [1000, 1008, 1016, 1024, 1000]

    def test_reset(self):
        stream = StridedStream(base=0, stride=8, footprint=64)
        first = [stream.next_address() for _ in range(10)]
        stream.reset()
        assert [stream.next_address() for _ in range(10)] == first

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StridedStream(base=0, stride=0, footprint=64)
        with pytest.raises(ValueError):
            StridedStream(base=0, stride=64, footprint=32)


class TestRandomStream:
    def test_deterministic_per_seed(self):
        a = RandomStream(base=0, footprint=4096, seed=7)
        b = RandomStream(base=0, footprint=4096, seed=7)
        assert [a.next_address() for _ in range(50)] == \
            [b.next_address() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = RandomStream(base=0, footprint=1 << 20, seed=1)
        b = RandomStream(base=0, footprint=1 << 20, seed=2)
        assert [a.next_address() for _ in range(20)] != \
            [b.next_address() for _ in range(20)]

    def test_addresses_in_range_and_aligned(self):
        stream = RandomStream(base=0x1000, footprint=4096, align=64, seed=3)
        for _ in range(200):
            addr = stream.next_address()
            assert 0x1000 <= addr < 0x1000 + 4096
            assert addr % 64 == 0

    def test_reset(self):
        stream = RandomStream(base=0, footprint=4096, seed=11)
        first = [stream.next_address() for _ in range(20)]
        stream.reset()
        assert [stream.next_address() for _ in range(20)] == first


class TestPointerChaseStream:
    def test_visits_every_slot_before_repeating(self):
        stream = PointerChaseStream(base=0, footprint=64 * 16, align=64,
                                    seed=5)
        seen = [stream.next_address() for _ in range(16)]
        assert len(set(seen)) == 16
        # The 17th address restarts the cycle.
        assert stream.next_address() == seen[0]

    def test_deterministic(self):
        a = PointerChaseStream(base=0, footprint=64 * 32, seed=9)
        b = PointerChaseStream(base=0, footprint=64 * 32, seed=9)
        assert [a.next_address() for _ in range(40)] == \
            [b.next_address() for _ in range(40)]

    def test_rejects_tiny_region(self):
        with pytest.raises(ValueError):
            PointerChaseStream(base=0, footprint=64, align=64)


class TestStackStream:
    def test_addresses_within_window(self):
        stream = StackStream(base=0x100, slots=8, align=8, seed=1)
        for _ in range(100):
            addr = stream.next_address()
            assert 0x100 <= addr < 0x100 + 8 * 8

    def test_reset(self):
        stream = StackStream(base=0, slots=16, seed=2)
        first = [stream.next_address() for _ in range(30)]
        stream.reset()
        assert [stream.next_address() for _ in range(30)] == first


class TestPairedStreams:
    def test_lag_zero_matches_exactly(self):
        factory = lambda: StackStream(base=0, slots=16, seed=4)  # noqa: E731
        producer, consumer = paired_streams(factory, lag=0)
        for _ in range(50):
            assert producer.next_address() == consumer.next_address()

    def test_lag_shifts_producer_ahead(self):
        factory = lambda: StridedStream(base=0, stride=8, footprint=1 << 16)  # noqa: E731
        producer, consumer = paired_streams(factory, lag=3)
        produced = [producer.next_address() for _ in range(10)]
        consumed = [consumer.next_address() for _ in range(10)]
        # consumer's value at step i equals producer's at step i - 3
        assert consumed[3:] == [p - 24 for p in produced[3:]]
        assert consumed[0] == 0

    def test_rejects_negative_lag(self):
        with pytest.raises(ValueError):
            paired_streams(lambda: StackStream(0), lag=-1)
