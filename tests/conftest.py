"""Shared fixtures and trace-building helpers."""

from __future__ import annotations

import pytest

from repro.config import LsqConfig, MachineConfig, base_machine
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace


def alu(pc=0x1000, dest=1, srcs=()):
    return Instruction(pc=pc, op=OpClass.INT_ALU, dest=dest, srcs=tuple(srcs))


def load(addr, pc=0x2000, dest=2, srcs=(), size=8):
    return Instruction(pc=pc, op=OpClass.LOAD, dest=dest, srcs=tuple(srcs),
                       addr=addr, size=size)


def store(addr, pc=0x3000, srcs=(), size=8):
    return Instruction(pc=pc, op=OpClass.STORE, srcs=tuple(srcs),
                       addr=addr, size=size)


def branch(pc=0x4000, taken=True, target=0x1000, srcs=()):
    return Instruction(pc=pc, op=OpClass.BRANCH, srcs=tuple(srcs),
                       taken=taken, target=target)


def make_trace(instructions, name="test"):
    return Trace(instructions, name=name)


def filler(n, base_pc=0x8000):
    """n independent single-cycle ALU ops."""
    return [alu(pc=base_pc + 4 * i, dest=(i % 8) + 1) for i in range(n)]


@pytest.fixture
def machine() -> MachineConfig:
    return base_machine()


@pytest.fixture
def small_machine() -> MachineConfig:
    """A small machine so queue-capacity effects trigger quickly."""
    return base_machine(lq_entries=8, sq_entries=8)
