"""Shared fixtures and trace-building helpers."""

from __future__ import annotations

import hashlib
import pathlib

import pytest

from repro.config import LsqConfig, MachineConfig, base_machine
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_TRACKED_REPORTS = ("BENCH_sweep.json", "BENCH_core.json",
                    "BENCH_service.json")


def _report_digests():
    digests = {}
    for name in _TRACKED_REPORTS:
        path = _REPO_ROOT / name
        if path.exists():
            digests[name] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digests


@pytest.fixture(scope="session", autouse=True)
def tracked_bench_reports_stay_untouched():
    """No test may clobber a committed benchmark baseline.

    A bench invocation that forgets ``-o`` (or a chdir) writes its
    report to the repo root, silently replacing the tracked perf
    baseline with debug output — which then gets committed.  Hash the
    tracked reports before the session and fail loudly if any changed.
    """
    before = _report_digests()
    yield
    after = _report_digests()
    changed = sorted(name for name in before
                     if after.get(name) != before[name])
    assert not changed, (
        f"test run modified tracked benchmark report(s) {changed}; "
        "point bench/profile output at tmp_path with -o")


def alu(pc=0x1000, dest=1, srcs=()):
    return Instruction(pc=pc, op=OpClass.INT_ALU, dest=dest, srcs=tuple(srcs))


def load(addr, pc=0x2000, dest=2, srcs=(), size=8):
    return Instruction(pc=pc, op=OpClass.LOAD, dest=dest, srcs=tuple(srcs),
                       addr=addr, size=size)


def store(addr, pc=0x3000, srcs=(), size=8):
    return Instruction(pc=pc, op=OpClass.STORE, srcs=tuple(srcs),
                       addr=addr, size=size)


def branch(pc=0x4000, taken=True, target=0x1000, srcs=()):
    return Instruction(pc=pc, op=OpClass.BRANCH, srcs=tuple(srcs),
                       taken=taken, target=target)


def make_trace(instructions, name="test"):
    return Trace(instructions, name=name)


def filler(n, base_pc=0x8000):
    """n independent single-cycle ALU ops."""
    return [alu(pc=base_pc + 4 * i, dest=(i % 8) + 1) for i in range(n)]


@pytest.fixture
def machine() -> MachineConfig:
    return base_machine()


@pytest.fixture
def small_machine() -> MachineConfig:
    """A small machine so queue-capacity effects trigger quickly."""
    return base_machine(lq_entries=8, sq_entries=8)
