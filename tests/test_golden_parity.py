"""Golden-digest parity suite: simulator semantics pinned bit-exactly.

Every entry below is the SHA-256 of the canonicalized
:class:`~repro.stats.counters.SimStats` of one (benchmark, seed, preset)
run, recorded before the hot-path overhaul of the cycle loop.  Any
future performance work that drifts a single counter — an extra search,
a different forwarding match, one more port stall — changes the digest
and fails this suite loudly.

Coverage deliberately spans the four machine presets of the paper's
evaluation (two-ported conventional, one-ported techniques, segmented,
and the load-buffer "full" configuration) on two generator seeds, and
includes runs *through* squash-recovery windows: both ``mgrid`` on the
segmented preset and ``wupwise`` on the pair-predictor preset trigger
load-load ordering violation squashes, so recovery, replay, and
re-execution paths are all under the digest.

Every golden cell runs under **both** simulation backends
(``MachineConfig.backend``: the reference python engine and the
``repro.fastcore`` fast engine) against the *same* digest — the fast
engine's contract is bit-identical SimStats, not approximately-equal
ones.  ``scripts/fast_parity.py`` gives CI the same sweep as one
command; ``tests/test_fastcore.py`` adds randomized cross-backend
configs beyond the pinned grid.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    segmented_lsq,
    techniques_lsq,
)
from repro.pipeline.processor import simulate
from repro.stats.counters import SimStats, canonical_stats, stats_digest
from repro.workload import generate_trace

N_INSTRUCTIONS = 3000

PRESETS = {
    "conventional-2p": lambda: conventional_lsq(ports=2),
    "techniques-1p": lambda: techniques_lsq(ports=1),
    "segmented-2p": lambda: segmented_lsq(ports=2),
    "full-1p": lambda: full_techniques_lsq(ports=1),
}

#: (benchmark, seed, preset) -> SHA-256 of canonical_stats(run stats).
GOLDEN_DIGESTS = {
    ("gcc", 0, "conventional-2p"):
        "eb9ea6317d191e01847e344e794b587d891c0f1381da915758b6fc17d956f035",
    ("gcc", 0, "techniques-1p"):
        "4706c31b8defa04c9c08c4a3a154626b9dccbf417868b6ed90c26ce3d4dba82f",
    ("gcc", 0, "segmented-2p"):
        "eb9ea6317d191e01847e344e794b587d891c0f1381da915758b6fc17d956f035",
    ("gcc", 0, "full-1p"):
        "4706c31b8defa04c9c08c4a3a154626b9dccbf417868b6ed90c26ce3d4dba82f",
    ("gcc", 1, "conventional-2p"):
        "fd6f2149c02404a260772570abe839badbacfbb5caded546b0b9987e4e194fe5",
    ("gcc", 1, "techniques-1p"):
        "9fc721a98ab24c5ab0f2a2f6c8ab1ca03de991bbdbc5192b7cc7a617ee3157f7",
    ("gcc", 1, "segmented-2p"):
        "fd6f2149c02404a260772570abe839badbacfbb5caded546b0b9987e4e194fe5",
    ("gcc", 1, "full-1p"):
        "9fc721a98ab24c5ab0f2a2f6c8ab1ca03de991bbdbc5192b7cc7a617ee3157f7",
    ("mgrid", 0, "conventional-2p"):
        "707fc2e63748ba3295df3e175fac2926e863c5089edb81324fd00eb35797641a",
    ("mgrid", 0, "techniques-1p"):
        "c497297d7f85fd8ebe6ce211d01f822d52814e34c7202fa5c9f7add232e7d841",
    ("mgrid", 0, "segmented-2p"):
        "eb69fe5ca2f1d190c3fee805c160faff26be23e6083c04f7acdd2421b0de91ab",
    ("mgrid", 0, "full-1p"):
        "d26eb1ac1f5cdfcd923090f6c9481d3cae11a04485e9b1e0ef420c336e505d42",
    ("mgrid", 1, "conventional-2p"):
        "5d4c5db21ca89bb85810ae238244dec0ff69206a0e23f4bd9258880def601896",
    ("mgrid", 1, "techniques-1p"):
        "5e8c64859697ab1fc21621d07f04b95ac9d1965af965f6e94cc155684761d466",
    ("mgrid", 1, "segmented-2p"):
        "ee0de734054d3e43fecedc1c642e1486cd24ce78bc08de3cac981afa8f5997fb",
    ("mgrid", 1, "full-1p"):
        "d416d75c44ebd2f3d32e0b3156aa6a77f9b9ec75a09a638461f731c75283f1c0",
    ("wupwise", 0, "conventional-2p"):
        "b9eeb7c886b73ed7f772cfc2bf3cd52fb29d8e7d1a2ad3c76a8405ffbc1e823c",
    ("wupwise", 0, "techniques-1p"):
        "e53f7a0ac35d24116313ef79fb55f77e299f35fedcb01ef69deb76ae89336939",
    ("wupwise", 0, "segmented-2p"):
        "db769d172ee9224976a44a54ee7dd24df16cad61968fc819cef8e83387ff2511",
    ("wupwise", 0, "full-1p"):
        "9f5de5a10701210da19f3cf61673e59c2007a8d78798e3ee0fe0f6a11272b455",
    ("wupwise", 1, "conventional-2p"):
        "ad9976416ac6995b8eb336cee2f3ec7c0f39c97e7cbd9daa3cb678acf2129a24",
    ("wupwise", 1, "techniques-1p"):
        "539eda6c69a376bb4512f90c4c6ead91819ebe01d8e5c303818019888df5e54d",
    ("wupwise", 1, "segmented-2p"):
        "ed83c0d6554cb96bb5717afbf0c25186a9af1bc65e272b505b865fab8e238d84",
    ("wupwise", 1, "full-1p"):
        "ef9fee51b53f33e86a655eb29f51bb0c0c8180e64a705c2c841dfe6295089947",
}

_TRACE_CACHE = {}


def _trace(bench, seed):
    key = (bench, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(
            bench, n_instructions=N_INSTRUCTIONS, seed=seed)
    return _TRACE_CACHE[key]


@pytest.mark.parametrize("backend", ["python", "fast"])
@pytest.mark.parametrize("bench,seed,preset",
                         sorted(GOLDEN_DIGESTS),
                         ids=lambda v: str(v))
def test_stats_digest_matches_golden(bench, seed, preset, backend):
    machine = replace(base_machine(), lsq=PRESETS[preset](),
                      backend=backend)
    result = simulate(_trace(bench, seed), machine)
    assert stats_digest(result.stats) == \
        GOLDEN_DIGESTS[(bench, seed, preset)], (
        f"SimStats drifted for {bench} seed {seed} on {preset} "
        f"(backend={backend}): simulator semantics changed (or the "
        "canonical encoding did); if intentional, regenerate "
        "GOLDEN_DIGESTS and say so in the PR")


def test_suite_runs_through_squash_recovery():
    """The pinned runs must actually exercise squash recovery, or the
    parity suite would silently stop covering the recovery path."""
    segmented = simulate(
        _trace("mgrid", 0),
        replace(base_machine(), lsq=segmented_lsq(ports=2))).stats
    assert segmented.load_load_squashes > 0
    assert segmented.violation_squashes > 0
    predictor = simulate(
        _trace("wupwise", 1),
        replace(base_machine(), lsq=techniques_lsq(ports=1))).stats
    assert predictor.load_load_squashes > 0
    assert predictor.violation_squashes > 0


@pytest.mark.slow
def test_served_cell_matches_golden_digest(tmp_path):
    """Telemetry parity: a cell served through the fully instrumented
    server (spans, metrics, logs, heartbeats all live) must produce the
    exact golden SimStats digest — observation cannot perturb the
    simulated machine."""
    from repro.harness.engine import ResultCache
    from repro.serve.bench import ServerHarness
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig
    from repro.serve.spec import expand_cells, parse_spec

    spec = parse_spec({"benchmarks": ["gcc"],
                       "presets": ["conventional"], "seeds": [0],
                       "n_instructions": N_INSTRUCTIONS})
    (cell,) = expand_cells(spec)
    assert cell.label == "conventional-2p"
    cache_dir = tmp_path / "cache"
    config = ServeConfig(port=0, workers=1, cache_dir=str(cache_dir),
                         heartbeat_s=0.25)
    with ServerHarness(config) as harness:
        client = ServeClient(port=harness.port)
        job = client.submit(spec.as_payload(), trace="parity")
        final = client.wait(str(job["id"]), stall_after_s=60.0)
    (row,) = final["cells"]
    assert row["status"] == "done" and row["digest"] == cell.digest()
    payload = ResultCache(cache_dir).load(cell.digest())
    assert payload is not None, "served cell never reached the cache"
    assert stats_digest(payload.result.stats) == \
        GOLDEN_DIGESTS[("gcc", 0, "conventional-2p")], (
        "serving a cell through the telemetry-instrumented stack "
        "changed its SimStats — observation must be side-effect-free")


def test_canonical_stats_is_stable_and_complete():
    stats = SimStats()
    stats.cycles = 7
    stats.segment_search_hist = {2: 1, 1: 3}
    first = canonical_stats(stats)
    stats.segment_search_hist = {1: 3, 2: 1}  # same content, other order
    assert canonical_stats(stats) == first
    # Every dataclass field participates in the digest.
    import dataclasses
    import json
    payload = json.loads(first)
    assert set(payload) == {f.name for f in dataclasses.fields(SimStats)}
    stats.sq_searches += 1
    assert canonical_stats(stats) != first
