"""Property-based tests (hypothesis) on core invariants.

* Any well-formed random trace runs to completion on any LSQ design and
  commits exactly its length.
* The segmented queue preserves program order, capacity, and allocation
  invariants under random allocate/commit/squash interleavings.
* The cache behaves identically to a reference LRU model.
* The NILP tracker's out-of-order count matches a brute-force recount.
"""

import random as stdlib_random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    AllocationPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
)
from dataclasses import replace

from repro.config import CacheConfig
from repro.core.load_buffer import NilpTracker
from repro.core.queues import SegmentedQueue
from repro.memory.cache import Cache
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.processor import simulate
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace


# ---------------------------------------------------------------------------
# random trace -> simulation invariants
# ---------------------------------------------------------------------------

def random_trace(seed: int, length: int) -> Trace:
    rng = stdlib_random.Random(seed)
    insts = []
    pcs = [0x1000 + 4 * i for i in range(32)]
    for i in range(length):
        pc = pcs[i % len(pcs)]
        roll = rng.random()
        if roll < 0.25:
            addr = 0x2000 + 8 * rng.randrange(32)
            insts.append(Instruction(pc=pc, op=OpClass.LOAD,
                                     dest=rng.randrange(1, 30),
                                     srcs=(rng.randrange(1, 30),),
                                     addr=addr))
        elif roll < 0.38:
            addr = 0x2000 + 8 * rng.randrange(32)
            insts.append(Instruction(pc=pc, op=OpClass.STORE,
                                     srcs=(rng.randrange(1, 30),
                                           rng.randrange(1, 30)),
                                     addr=addr))
        elif roll < 0.5:
            insts.append(Instruction(pc=pc, op=OpClass.BRANCH,
                                     srcs=(rng.randrange(1, 30),),
                                     taken=rng.random() < 0.5,
                                     target=pcs[0]))
        else:
            insts.append(Instruction(pc=pc, op=OpClass.INT_ALU,
                                     dest=rng.randrange(1, 30),
                                     srcs=(rng.randrange(1, 30),
                                           rng.randrange(1, 30))))
    return Trace(insts, name=f"random-{seed}")


LSQ_VARIANTS = [
    LsqConfig(),
    LsqConfig(search_ports=1),
    LsqConfig(predictor=PredictorMode.PAIR,
              lq_search=LoadQueueSearchMode.LOAD_BUFFER,
              load_buffer_entries=1),
    LsqConfig(predictor=PredictorMode.AGGRESSIVE),
    LsqConfig(predictor=PredictorMode.PERFECT),
    LsqConfig(segments=4, segment_entries=6),
    LsqConfig(segments=4, segment_entries=6,
              allocation=AllocationPolicy.NO_SELF_CIRCULAR,
              predictor=PredictorMode.PAIR,
              lq_search=LoadQueueSearchMode.LOAD_BUFFER),
    LsqConfig(lq_entries=4, sq_entries=4),
    LsqConfig(lq_search=LoadQueueSearchMode.IN_ORDER),
]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), variant=st.integers(0, len(LSQ_VARIANTS) - 1))
def test_random_traces_always_complete(seed, variant):
    trace = random_trace(seed, 300)
    machine = replace(base_machine(), lsq=LSQ_VARIANTS[variant])
    result = simulate(trace, machine)
    stats = result.stats
    assert stats.committed == len(trace)
    assert stats.committed_loads == trace.stats().loads
    assert stats.committed_stores == trace.stats().stores
    assert 0 < stats.ipc <= machine.core.issue_width


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_simulation_is_deterministic(seed):
    trace = random_trace(seed, 200)
    a = simulate(trace, base_machine())
    b = simulate(trace, base_machine())
    assert vars(a.stats) == vars(b.stats)


# ---------------------------------------------------------------------------
# segmented queue invariants
# ---------------------------------------------------------------------------

def queue_entry(seq):
    return DynInst(seq, seq, Instruction(pc=4 * seq, op=OpClass.LOAD,
                                         dest=1, addr=8 * seq))


@settings(max_examples=40, deadline=None)
@given(policy=st.sampled_from(list(AllocationPolicy)),
       ops=st.lists(st.integers(0, 2), min_size=1, max_size=120),
       segments=st.integers(1, 4), entries=st.integers(1, 6))
def test_queue_invariants_under_random_ops(policy, ops, segments, entries):
    queue = SegmentedQueue("Q", segments, entries, policy)
    live = []
    seq = 0
    for op in ops:
        if op == 0 and queue.can_allocate():           # allocate
            seq += 1
            entry = queue_entry(seq)
            queue.allocate(entry)
            live.append(entry)
        elif op == 1 and live:                          # commit oldest
            queue.commit_head(live.pop(0))
        elif op == 2 and live:                          # squash a suffix
            cut = live[len(live) // 2].seq
            queue.squash_from(cut)
            live = [e for e in live if e.seq < cut]
        # invariants
        assert len(queue) == len(live)
        assert [e.seq for e in queue.entries()] == [e.seq for e in live]
        per_segment = {}
        for e in live:
            per_segment.setdefault(e.lsq_segment, []).append(e.seq)
        for seg, seqs in per_segment.items():
            assert 0 <= seg < segments
            assert len(seqs) <= entries
            assert seqs == sorted(seqs)
        if live:
            assert queue.oldest is live[0]
            assert queue.youngest is live[-1]
        assert len(live) <= queue.capacity


@settings(max_examples=25, deadline=None)
@given(seqs=st.lists(st.integers(1, 10 ** 6), min_size=2, max_size=40,
                     unique=True))
def test_queue_plans_partition_entries(seqs):
    queue = SegmentedQueue("Q", 4, 10, AllocationPolicy.SELF_CIRCULAR)
    for seq in sorted(seqs):
        queue.allocate(queue_entry(seq))
    pivot = sorted(seqs)[len(seqs) // 2]
    backward = [e.seq for __, entries in queue.backward_plan(pivot)
                for e in entries]
    forward = [e.seq for __, entries in queue.forward_plan(pivot)
               for e in entries]
    assert set(backward) == {s for s in seqs if s < pivot}
    assert set(forward) == {s for s in seqs if s > pivot}


# ---------------------------------------------------------------------------
# cache vs reference LRU model
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(accesses=st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_cache_matches_reference_lru(accesses):
    block = 32
    cache = Cache(CacheConfig(size_bytes=2 * 4 * block, associativity=2,
                              block_bytes=block, hit_latency=1))
    reference = {}  # set -> list of tags, LRU first
    for slot in accesses:
        addr = slot * block
        set_index, tag = slot % 4, slot // 4
        entries = reference.setdefault(set_index, [])
        expected_hit = tag in entries
        assert cache.lookup(addr) == expected_hit
        if expected_hit:
            entries.remove(tag)
            entries.append(tag)
        else:
            cache.fill(addr)
            if len(entries) >= 2:
                entries.pop(0)
            entries.append(tag)


# ---------------------------------------------------------------------------
# NILP tracker vs brute force
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.integers(0, 1), min_size=1, max_size=60))
def test_nilp_count_matches_bruteforce(ops):
    tracker = NilpTracker()
    loads = []
    seq = 0
    rng = stdlib_random.Random(42)
    for op in ops:
        if op == 0:
            seq += 1
            ld = queue_entry(seq)
            tracker.on_allocate(ld)
            loads.append(ld)
        else:
            pending = [l for l in loads if not l.mem_executed]
            if not pending:
                continue
            victim = rng.choice(pending)
            if not tracker.is_in_order(victim):
                tracker.mark_ooo_issue(victim)
            victim.mem_executed = True
            tracker.advance()
        # brute force: issued loads with an older un-issued load
        expected = 0
        for i, ld in enumerate(loads):
            if ld.mem_executed and any(not o.mem_executed
                                       for o in loads[:i]):
                expected += 1
        assert tracker.ooo_in_flight == expected
