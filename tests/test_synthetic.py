"""Tests for the synthetic SPEC2K-like trace generator."""

import collections

import pytest
from dataclasses import replace

from repro.workload.spec2k import (
    ALL_BENCHMARKS,
    SPEC2K_PROFILES,
    BenchmarkProfile,
    profile_for,
)
from repro.workload.isa import OpClass
from repro.workload.synthetic import (
    SyntheticProgram,
    colliding_pc,
    fnv1a,
    generate_trace,
    ssit_index,
)


def small_profile(**overrides):
    base = dict(name="toy", suite="INT", base_ipc=2.0, ooo_loads=1.0,
                lq_occupancy=10, sq_occupancy=5, load_frac=0.25,
                store_frac=0.10, branch_frac=0.10, fp_frac=0.0,
                kernel_size=40, num_kernels=1, loop_trip=16)
    base.update(overrides)
    return BenchmarkProfile(**base)


class TestProfiles:
    def test_eighteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 18
        assert len([n for n in ALL_BENCHMARKS
                    if SPEC2K_PROFILES[n].suite == "INT"]) == 9

    def test_lookup(self):
        assert profile_for("mgrid").load_frac == pytest.approx(0.51)
        with pytest.raises(KeyError, match="unknown benchmark"):
            profile_for("doom")

    def test_paper_facts_encoded(self):
        # In-text facts from the paper.
        assert profile_for("mgrid").store_frac == pytest.approx(0.02)
        assert profile_for("vortex").load_frac == pytest.approx(0.18)
        assert profile_for("vortex").store_frac == pytest.approx(0.23)
        assert profile_for("equake").load_frac == pytest.approx(0.42)

    def test_rejects_overfull_mix(self):
        with pytest.raises(ValueError):
            small_profile(load_frac=0.6, store_frac=0.3, branch_frac=0.2)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            small_profile(pair_frac=1.5)


class TestSsitHelpers:
    def test_fnv1a_deterministic(self):
        assert fnv1a("mgrid") == fnv1a("mgrid")
        assert fnv1a("mgrid") != fnv1a("mcf")

    def test_colliding_pc_shares_index(self):
        leader = 0x400100
        for member in range(1, 6):
            other = colliding_pc(leader, member, salt=3)
            assert other != leader
            assert ssit_index(other) == ssit_index(leader)

    def test_colliding_pcs_distinct(self):
        leader = 0x400060
        pcs = {colliding_pc(leader, m, salt=1) for m in range(6)}
        assert len(pcs) == 6


class TestGeneratedMix:
    def test_requested_length(self):
        trace = generate_trace("gzip", n_instructions=3000)
        assert len(trace) == 3000

    def test_mix_matches_profile(self):
        profile = profile_for("gzip")
        stats = generate_trace("gzip", n_instructions=6000).stats()
        assert stats.load_fraction == pytest.approx(profile.load_frac,
                                                    abs=0.05)
        assert stats.store_fraction == pytest.approx(profile.store_frac,
                                                     abs=0.04)
        assert stats.branch_fraction == pytest.approx(profile.branch_frac,
                                                      abs=0.04)

    def test_fp_suite_has_fp_ops(self):
        stats = generate_trace("mgrid", n_instructions=2000).stats()
        assert stats.fp_ops > 0

    def test_int_suite_has_no_fp_compute(self):
        trace = generate_trace("gzip", n_instructions=2000)
        assert all(not inst.op.is_fp or inst.is_memory for inst in trace)

    def test_deterministic_per_seed(self):
        a = generate_trace("parser", n_instructions=1000, seed=1)
        b = generate_trace("parser", n_instructions=1000, seed=1)
        assert list(a) == list(b)

    def test_seeds_differ(self):
        a = generate_trace("parser", n_instructions=1000, seed=1)
        b = generate_trace("parser", n_instructions=1000, seed=2)
        assert list(a) != list(b)

    def test_cold_regions_registered(self):
        trace = generate_trace("mcf", n_instructions=500)
        assert trace.cold_regions
        assert any(trace.is_cold_address(inst.addr)
                   for inst in trace if inst.is_memory)

    def test_every_benchmark_generates(self):
        for name in ALL_BENCHMARKS:
            trace = generate_trace(name, n_instructions=400)
            assert len(trace) == 400


class TestForwardingPairs:
    @staticmethod
    def close_matches(trace, window=64):
        last = {}
        count = 0
        for i, inst in enumerate(trace):
            if inst.is_store:
                last[inst.addr] = i
            elif inst.is_load:
                j = last.get(inst.addr)
                if j is not None and i - j <= window:
                    count += 1
        return count

    def test_pairs_produce_close_matches(self):
        profile = small_profile(pair_frac=0.2)
        trace = SyntheticProgram(profile).emit(4000)
        assert self.close_matches(trace) > 30

    def test_no_pairs_few_matches(self):
        profile = small_profile(pair_frac=0.0, same_addr_load_frac=0.0)
        trace = SyntheticProgram(profile).emit(4000)
        assert self.close_matches(trace) < 10

    def test_pair_noise_reduces_matches(self):
        clean = SyntheticProgram(small_profile(pair_frac=0.2,
                                               pair_noise=0.0)).emit(4000)
        noisy = SyntheticProgram(small_profile(pair_frac=0.2,
                                               pair_noise=0.6)).emit(4000)
        assert self.close_matches(noisy) < self.close_matches(clean)

    def test_group_members_collide_in_ssit(self):
        profile = small_profile(pair_frac=0.15, pair_group_size=4,
                                store_frac=0.15, kernel_size=60)
        program = SyntheticProgram(profile)
        load_pcs = [slot.pc for slot in program.kernels[0].slots
                    if slot.op.is_load and slot.match_modulo > 1]
        indices = collections.Counter(ssit_index(pc) for pc in load_pcs)
        assert any(count >= 2 for count in indices.values())

    def test_rotation_members_alternate(self):
        profile = small_profile(pair_frac=0.1, pair_group_size=3,
                                store_frac=0.15, pair_noise=0.0)
        program = SyntheticProgram(profile)
        member_slots = [s for s in program.kernels[0].slots
                        if s.op.is_load and s.match_modulo == 3]
        assert member_slots, "expected rotation members"
        assert {s.match_member for s in member_slots} == {0, 1, 2}


class TestChaseChains:
    def test_chase_slot_reads_and_writes_chain_register(self):
        profile = small_profile(chase_loads=1, l2_footprint=1 << 20)
        program = SyntheticProgram(profile)
        chase = [s for s in program.kernels[0].slots
                 if s.op.is_load and s.dest in s.srcs]
        assert len(chase) == 1

    def test_chain_register_never_clobbered(self):
        profile = small_profile(chase_loads=1, l2_footprint=1 << 20)
        program = SyntheticProgram(profile)
        chase = next(s for s in program.kernels[0].slots
                     if s.op.is_load and s.dest in s.srcs)
        writers = [s for s in program.kernels[0].slots
                   if s.dest == chase.dest and s is not chase]
        assert not writers

    def test_chase_period_repeats_addresses(self):
        profile = small_profile(chase_loads=1, chase_period=4,
                                l2_footprint=1 << 20, loop_trip=32)
        program = SyntheticProgram(profile)
        trace = program.emit(2000)
        chase_pc = next(s.pc for s in program.kernels[0].slots
                        if s.op.is_load and s.dest in s.srcs)
        addrs = [inst.addr for inst in trace if inst.pc == chase_pc]
        runs = collections.Counter()
        current, length = None, 0
        for addr in addrs:
            if addr == current:
                length += 1
            else:
                if current is not None:
                    runs[length] += 1
                current, length = addr, 1
        assert runs and max(runs) >= 4


class TestColdSlots:
    def test_cold_count_deterministic(self):
        profile = small_profile(cold_frac=0.2, l2_footprint=1 << 22)
        trace = SyntheticProgram(profile).emit(2000)
        cold = sum(1 for inst in trace
                   if inst.is_load and trace.is_cold_address(inst.addr))
        assert cold > 0

    def test_zero_cold(self):
        profile = small_profile(cold_frac=0.0)
        trace = SyntheticProgram(profile).emit(2000)
        assert all(not trace.is_cold_address(inst.addr)
                   for inst in trace if inst.is_memory)


class TestBranches:
    def test_backedge_taken_until_phase_end(self):
        profile = small_profile(loop_trip=8, branch_frac=0.05)
        program = SyntheticProgram(profile)
        backedge_pc = next(s.pc for s in program.kernels[0].slots
                           if s.is_backedge)
        trace = program.emit(len(program.kernels[0].slots) * 8)
        outcomes = [inst.taken for inst in trace if inst.pc == backedge_pc]
        assert outcomes[:-1] == [True] * (len(outcomes) - 1)
        assert outcomes[-1] is False

    def test_branch_targets_set(self):
        trace = generate_trace("gcc", n_instructions=1000)
        for inst in trace:
            if inst.is_branch:
                assert inst.target > 0


class TestMembarRate:
    def test_default_traces_have_no_membars(self):
        """membar_rate defaults to 0.0 and must leave default-profile
        traces byte-identical (the golden-parity digests depend on it)."""
        assert all(p.membar_rate == 0.0 for p in SPEC2K_PROFILES.values())
        trace = generate_trace("gcc", n_instructions=1500)
        assert not any(inst.op is OpClass.MEMBAR for inst in trace)

    def test_rejects_bad_membar_rate(self):
        with pytest.raises(ValueError):
            small_profile(membar_rate=1.5)

    def test_membars_appear_at_requested_density(self):
        profile = small_profile(membar_rate=0.25)
        trace = SyntheticProgram(profile, seed=1).emit(1200)
        membars = sum(1 for inst in trace if inst.op is OpClass.MEMBAR)
        loads = sum(1 for inst in trace if inst.is_load)
        assert membars > 0
        # Deterministic density: one barrier per 1/rate load slots.
        assert membars == pytest.approx(loads * 0.25, rel=0.35)

    def test_membars_commit(self):
        """The emitted barriers actually travel the pipeline: they
        commit, and they gate load issue along the way."""
        from repro.config import base_machine
        from repro.pipeline.processor import simulate

        profile = small_profile(membar_rate=0.2)
        trace = SyntheticProgram(profile, seed=2).emit(1000)
        result = simulate(trace, base_machine(), validate=True)
        emitted = sum(1 for inst in trace if inst.op is OpClass.MEMBAR)
        assert result.stats.committed_membars == emitted
        assert result.stats.membar_stalls > 0
