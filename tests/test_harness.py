"""Tests for the experiment runner and figure/table generators."""

import pytest

from repro.config import base_machine, conventional_lsq
from repro.harness.experiment import ExperimentRunner
from repro.harness import figures


@pytest.fixture(scope="module")
def runner():
    # Two small benchmarks keep the figure sweeps fast.
    return ExperimentRunner(n_instructions=1200,
                            benchmarks=("gzip", "mgrid"))


class TestRunner:
    def test_trace_cached(self, runner):
        assert runner.trace("gzip") is runner.trace("gzip")

    def test_result_cached(self, runner):
        a = runner.run("gzip", base_machine())
        b = runner.run("gzip", base_machine())
        assert a is b

    def test_different_configs_not_conflated(self, runner):
        a = runner.run("gzip", base_machine())
        b = runner.run("gzip", base_machine(search_ports=1))
        assert a is not b

    def test_run_suite_covers_benchmarks(self, runner):
        results = runner.run_suite(base_machine())
        assert set(results) == {"gzip", "mgrid"}

    def test_run_lsq_suite(self, runner):
        results = runner.run_lsq_suite(conventional_lsq(ports=4))
        assert all(r.config.lsq.search_ports == 4 for r in results.values())


class TestFigures:
    @pytest.mark.parametrize("name", list(figures.ALL_EXPERIMENTS))
    def test_every_experiment_produces_rows(self, runner, name):
        result = figures.ALL_EXPERIMENTS[name](runner)
        assert result.rows
        benches = {row[0] for row in result.rows}
        assert {"gzip", "mgrid", "Int.Avg", "Fp.Avg"} <= benches
        text = result.format()
        assert result.headers[0] in text or result.name in text

    def test_fig6_values_are_fractions(self, runner):
        result = figures.fig6_sq_bandwidth(runner)
        for row in result.rows:
            for cell in row[1:]:
                assert 0.0 <= float(cell) <= 1.5

    def test_table6_rows_sum_to_100(self, runner):
        result = figures.table6_segment_distribution(runner)
        for row in result.rows:
            total = sum(float(c) for c in row[1:])
            assert total == pytest.approx(100.0, abs=1.0)

    def test_by_benchmark_accessor(self, runner):
        result = figures.table2_base_ipc(runner)
        per_bench = result.by_benchmark(1)
        assert set(per_bench) == {"gzip", "mgrid"}
