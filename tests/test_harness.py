"""Tests for the experiment runner and figure/table generators."""

import dataclasses

import pytest

from repro.config import base_machine, conventional_lsq
from repro.harness.engine import ResultCache, SweepEngine
from repro.harness.experiment import (ExperimentRunner, confidence,
                                      default_instructions)
from repro.harness import figures


@pytest.fixture(scope="module")
def runner():
    # Two small benchmarks keep the figure sweeps fast.
    return ExperimentRunner(n_instructions=1200,
                            benchmarks=("gzip", "mgrid"))


class TestRunner:
    def test_trace_cached(self, runner):
        assert runner.trace("gzip") is runner.trace("gzip")

    def test_result_cached(self, runner):
        a = runner.run("gzip", base_machine())
        b = runner.run("gzip", base_machine())
        assert a is b

    def test_different_configs_not_conflated(self, runner):
        a = runner.run("gzip", base_machine())
        b = runner.run("gzip", base_machine(search_ports=1))
        assert a is not b

    def test_run_suite_covers_benchmarks(self, runner):
        results = runner.run_suite(base_machine())
        assert set(results) == {"gzip", "mgrid"}

    def test_run_lsq_suite(self, runner):
        results = runner.run_lsq_suite(conventional_lsq(ports=4))
        assert all(r.config.lsq.search_ports == 4 for r in results.values())

    def test_different_run_lengths_not_conflated(self):
        """Regression: the old (benchmark, machine) result key let two
        runners sharing a cache collide on n_instructions/seed."""
        engine = SweepEngine()
        short = ExperimentRunner(n_instructions=600, engine=engine)
        long = ExperimentRunner(n_instructions=1200, engine=engine)
        a = short.run("gzip", base_machine())
        b = long.run("gzip", base_machine())
        assert a.stats.committed < b.stats.committed

    def test_different_seeds_not_conflated(self, runner):
        a = runner.run("gzip", base_machine(), seed=0)
        b = runner.run("gzip", base_machine(), seed=7)
        assert a is not b
        assert dataclasses.asdict(a.stats) != dataclasses.asdict(b.stats)


class TestRunSeeds:
    def test_run_seeds_is_cached(self):
        """Regression: run_seeds used to call simulate() directly,
        bypassing the result cache entirely."""
        runner = ExperimentRunner(n_instructions=600)
        first = runner.run_seeds("gzip", base_machine(), seeds=(0, 1))
        simulated = runner.engine.simulated
        second = runner.run_seeds("gzip", base_machine(), seeds=(0, 1))
        assert runner.engine.simulated == simulated  # no new simulations
        assert [a is b for a, b in zip(first, second)] == [True, True]

    def test_run_seeds_shares_cache_with_run(self):
        runner = ExperimentRunner(n_instructions=600)
        by_run = runner.run("gzip", base_machine(), seed=1)
        by_seeds = runner.run_seeds("gzip", base_machine(), seeds=(1,))[0]
        assert by_seeds is by_run

    def test_run_seeds_honours_validate(self, tmp_path):
        """Regression: run_seeds used to drop validate=True on the
        floor.  A validating runner must produce oracle summaries for
        every seed (visible through the engine's disk cache)."""
        engine = SweepEngine(cache=ResultCache(tmp_path))
        runner = ExperimentRunner(n_instructions=400, validate=True,
                                  engine=engine)
        runner.run_seeds("gzip", base_machine(), seeds=(0, 1))
        replay = SweepEngine(cache=ResultCache(tmp_path))
        for seed in (0, 1):
            from repro.harness.engine import Cell
            cached = replay.run_cell(Cell(
                benchmark="gzip", machine=base_machine(), seed=seed,
                n_instructions=400, validate=True))
            assert cached.cached
            assert cached.validation is not None
            assert cached.validation.checked_loads > 0


class TestInstructionEnv:
    def test_env_read_at_construction_not_import(self, monkeypatch):
        """Regression: REPRO_BENCH_INSTRUCTIONS used to be captured at
        import time, so setting it afterwards was silently ignored."""
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
        assert default_instructions() == 1234
        assert ExperimentRunner().n_instructions == 1234
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "777")
        assert ExperimentRunner().n_instructions == 777

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "1234")
        assert ExperimentRunner(n_instructions=55).n_instructions == 55

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_INSTRUCTIONS", raising=False)
        assert ExperimentRunner().n_instructions == 6000


class TestConfidence:
    def test_single_value(self):
        assert confidence([2.5]) == (2.5, 0.0)

    def test_identical_values(self):
        mean, spread = confidence([1.25, 1.25, 1.25])
        assert mean == 1.25 and spread == 0.0

    def test_spread_is_half_range(self):
        mean, spread = confidence([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert spread == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence([])


class TestFigures:
    @pytest.mark.parametrize("name", list(figures.ALL_EXPERIMENTS))
    def test_every_experiment_produces_rows(self, runner, name):
        result = figures.ALL_EXPERIMENTS[name](runner)
        assert result.rows
        benches = {row[0] for row in result.rows}
        assert {"gzip", "mgrid", "Int.Avg", "Fp.Avg"} <= benches
        text = result.format()
        assert result.headers[0] in text or result.name in text

    def test_fig6_values_are_fractions(self, runner):
        result = figures.fig6_sq_bandwidth(runner)
        for row in result.rows:
            for cell in row[1:]:
                assert 0.0 <= float(cell) <= 1.5

    def test_table6_rows_sum_to_100(self, runner):
        result = figures.table6_segment_distribution(runner)
        for row in result.rows:
            total = sum(float(c) for c in row[1:])
            assert total == pytest.approx(100.0, abs=1.0)

    def test_by_benchmark_accessor(self, runner):
        result = figures.table2_base_ipc(runner)
        per_bench = result.by_benchmark(1)
        assert set(per_bench) == {"gzip", "mgrid"}
