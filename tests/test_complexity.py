"""Tests for the design-complexity model."""

import pytest

from repro.config import LoadQueueSearchMode, LsqConfig, PredictorMode, \
    conventional_lsq, full_techniques_lsq, segmented_lsq, techniques_lsq
from repro.core.complexity import (
    pareto_row,
    search_energy,
    static_complexity,
)
from repro.stats.counters import SimStats


class TestStaticComplexity:
    def test_baseline_is_unity(self):
        report = static_complexity(conventional_lsq(ports=2))
        assert report.area == pytest.approx(1.0)
        assert report.cycle_time == pytest.approx(1.0)
        assert report.entries_per_search == 32
        assert report.ports == 2

    def test_fewer_ports_cost_less(self):
        one = static_complexity(conventional_lsq(ports=1))
        four = static_complexity(conventional_lsq(ports=4))
        assert one.area < 1.0 < four.area
        assert one.cycle_time < 1.0 < four.cycle_time

    def test_big_flat_cam_is_expensive(self):
        big = static_complexity(conventional_lsq(ports=2, lq_entries=128,
                                                 sq_entries=128))
        assert big.area == pytest.approx(4.0)
        assert big.cycle_time > 1.0   # 128-entry match line

    def test_segmentation_grows_capacity_not_cycle_time(self):
        seg = static_complexity(segmented_lsq(ports=2))
        # 224 total entries but only a 28-entry CAM per search.
        assert seg.area > 3.0
        assert seg.cycle_time < 1.0
        assert seg.entries_per_search == 28

    def test_one_port_techniques_simplest(self):
        tech = static_complexity(techniques_lsq(ports=1))
        conv = static_complexity(conventional_lsq(ports=2))
        assert tech.area < conv.area
        assert tech.cycle_time < conv.cycle_time

    def test_load_buffer_area_counted(self):
        with_buf = static_complexity(techniques_lsq(ports=1,
                                                    load_buffer_entries=4))
        without = static_complexity(
            LsqConfig(search_ports=1, predictor=PredictorMode.PAIR))
        assert with_buf.area > without.area

    def test_format(self):
        assert "area" in static_complexity(conventional_lsq()).format()


class TestSearchEnergy:
    def test_energy_scales_with_searches(self):
        few = SimStats(sq_searches=10, lq_searches=10)
        many = SimStats(sq_searches=100, lq_searches=100)
        lsq = conventional_lsq()
        assert search_energy(many, lsq) > search_energy(few, lsq)

    def test_segmented_counts_visits(self):
        stats = SimStats(sq_searches=10, sq_segment_visits=25,
                         lq_searches=0, lq_segment_visits=0)
        seg = segmented_lsq()
        flat = conventional_lsq()
        # Segmented pays per visited 28-entry segment; flat pays per
        # 32-entry full search.
        assert search_energy(stats, seg) == pytest.approx(25 * 28)
        assert search_energy(stats, flat) == pytest.approx(10 * 32)

    def test_load_buffer_energy_is_small(self):
        stats = SimStats(load_buffer_searches=1000)
        lsq = techniques_lsq(ports=1, load_buffer_entries=2)
        assert search_energy(stats, lsq) < 1000 * 32

    def test_predictor_tables_counted(self):
        stats = SimStats(loads_predicted_dependent=100)
        pair = LsqConfig(predictor=PredictorMode.PAIR)
        conv = conventional_lsq()
        assert search_energy(stats, pair) > search_energy(stats, conv)


class TestParetoRow:
    def test_row_fields(self):
        base = SimStats(cycles=100, committed=200, sq_searches=50,
                        lq_searches=50)
        fast = SimStats(cycles=90, committed=200, sq_searches=5,
                        lq_searches=10)
        row = pareto_row("test", fast, techniques_lsq(ports=1),
                         base, conventional_lsq(ports=2))
        assert row["design"] == "test"
        assert row["speedup"].startswith("+")
        assert row["area"].endswith("x")
        assert int(row["capacity"]) == 64
