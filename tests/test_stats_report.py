"""Unit tests for statistics counters and report helpers."""

import pytest

from repro.stats.counters import SimStats
from repro.stats.report import (
    format_percent,
    format_table,
    geometric_mean,
    mean_speedup,
    speedup,
    summarise_by_suite,
)


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_occupancy_averages(self):
        stats = SimStats(cycles=10, lq_occupancy_cycles=50,
                         sq_occupancy_cycles=20, ooo_load_cycles=15)
        assert stats.avg_lq_occupancy == pytest.approx(5.0)
        assert stats.avg_sq_occupancy == pytest.approx(2.0)
        assert stats.avg_ooo_loads == pytest.approx(1.5)

    def test_squash_rate(self):
        stats = SimStats(committed=1000, store_load_squashes=2)
        assert stats.squash_rate == pytest.approx(2e-3)

    def test_predictor_mispredict_rate(self):
        stats = SimStats(committed_loads=100, useless_searches=5,
                         missed_dependences=5)
        assert stats.predictor_mispredict_rate == pytest.approx(0.1)

    def test_violation_total(self):
        stats = SimStats(store_load_squashes=1, load_load_squashes=2,
                         contention_squashes=3)
        assert stats.violation_squashes == 6

    def test_segment_distribution_normalises(self):
        stats = SimStats(segment_search_hist={1: 3, 2: 1})
        dist = stats.segment_search_distribution()
        assert dist == {1: pytest.approx(0.75), 2: pytest.approx(0.25)}

    def test_segment_distribution_empty(self):
        assert SimStats().segment_search_distribution() == {}


class TestReportHelpers:
    def test_speedup(self):
        assert speedup(1.1, 1.0) == pytest.approx(0.1)
        assert speedup(0.9, 1.0) == pytest.approx(-0.1)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([1, 1, 1]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_mean_speedup(self):
        assert mean_speedup([1.1, 1.1]) == pytest.approx(0.1)

    def test_format_percent(self):
        assert format_percent(0.063) == "+6.3%"
        assert format_percent(-0.2, digits=0) == "-20%"

    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["x", 1], ["yy", 22]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_summarise_by_suite(self):
        per_bench = {"a": 0.10, "b": 0.10, "x": 0.20}
        out = summarise_by_suite(per_bench, int_names=["a", "b"],
                                 fp_names=["x"])
        assert out["Int.Avg"] == pytest.approx(0.10)
        assert out["Fp.Avg"] == pytest.approx(0.20)
