"""Tests for the optional MSHR model on the L1-D miss path."""

import pytest
from dataclasses import replace

from repro.config import MemoryConfig, base_machine
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.processor import simulate
from repro.workload.synthetic import generate_trace


def hierarchy(mshrs):
    return MemoryHierarchy(replace(MemoryConfig(), l1d_mshrs=mshrs))


class TestMshrSemantics:
    def test_default_unlimited(self):
        h = hierarchy(0)
        results = [h.data_access(0x1000_0000 + 64 * i, cycle=0)
                   for i in range(10)]
        assert all(r.latency == 164 for r in results)
        assert h.mshr_queue_delays == 0

    def test_merge_onto_in_flight_block(self):
        h = hierarchy(4)
        first = h.data_access(0x1000, cycle=0)
        assert first.latency == 164
        # Same block, 10 cycles later: remaining time, not a new miss.
        again = h.data_access(0x1008, cycle=10)
        assert again.latency == 164 - 10
        assert h.mshr_merges == 1

    def test_merge_floor_is_hit_latency(self):
        h = hierarchy(4)
        h.data_access(0x1000, cycle=0)
        late = h.data_access(0x1008, cycle=163)
        assert late.latency == MemoryConfig().l1d.hit_latency

    def test_queue_when_all_mshrs_busy(self):
        h = hierarchy(2)
        h.data_access(0x10000, cycle=0)          # ready at 164
        h.data_access(0x20000, cycle=0)          # ready at 164
        third = h.data_access(0x30000, cycle=0)  # must wait for a slot
        assert third.latency == 164 + 164
        assert h.mshr_queue_delays == 1

    def test_slots_free_over_time(self):
        h = hierarchy(2)
        h.data_access(0x10000, cycle=0)
        h.data_access(0x20000, cycle=0)
        later = h.data_access(0x30000, cycle=200)   # both freed at 164
        assert later.latency == 164

    def test_completed_block_misses_again_only_if_evicted(self):
        h = hierarchy(2)
        h.data_access(0x10000, cycle=0)
        # After completion the block is cached: a re-access hits L1.
        hit = h.data_access(0x10000, cycle=500)
        assert hit.level == "L1"

    def test_no_cycle_bypasses_model(self):
        h = hierarchy(1)
        a = h.data_access(0x10000)
        b = h.data_access(0x20000)
        assert a.latency == b.latency == 164


class TestMshrEndToEnd:
    def test_limited_mshrs_slow_miss_heavy_code(self):
        trace = generate_trace("swim", n_instructions=2000)
        free = simulate(trace, base_machine()).ipc
        machine = base_machine()
        machine = replace(machine, memory=replace(machine.memory,
                                                  l1d_mshrs=1))
        limited = simulate(trace, machine).ipc
        assert limited <= free

    def test_generous_mshrs_match_unlimited(self):
        trace = generate_trace("gzip", n_instructions=2000)
        free = simulate(trace, base_machine()).stats
        machine = base_machine()
        machine = replace(machine, memory=replace(machine.memory,
                                                  l1d_mshrs=64))
        wide = simulate(trace, machine).stats
        assert abs(wide.ipc - free.ipc) / free.ipc < 0.05
