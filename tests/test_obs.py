"""Tests for the observability layer (:mod:`repro.obs`).

The load-bearing guarantees, straight from the ISSUE's acceptance
criteria:

* attaching an :class:`~repro.obs.Observer` leaves ``SimStats``
  **bit-identical** to an uninstrumented run, on every preset;
* the CPI stall-attribution stack sums to exactly
  ``cycles x commit_width``;
* the interval sampler is deterministic;
* the Chrome-trace export passes its own schema validator (the same
  check the CI ``trace-smoke`` job runs);
* the ``trace`` and ``profile`` CLI verbs work end to end.
"""

import dataclasses
import json
from dataclasses import replace

import pytest

from repro import cli
from repro.config import base_machine, full_techniques_lsq, segmented_lsq
from repro.obs import EVENT_KINDS, ObsConfig, Observer
from repro.obs.chrometrace import (
    export_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.events import EventBus
from repro.pipeline.debug import PipelineTracer
from repro.pipeline.processor import Processor, simulate
from repro.workload import generate_trace
from repro.workload.trace import Trace

PRESET_MACHINES = {
    "conventional": base_machine(),
    "conventional-1p": base_machine(search_ports=1),
    "segmented": replace(base_machine(), lsq=segmented_lsq(ports=2)),
    "full": replace(base_machine(), lsq=full_techniques_lsq(ports=1)),
}


def violation_trace():
    """A trace that reliably produces memory-ordering squashes."""
    from tests.conftest import alu, load, store
    insts = []
    for i in range(30):
        insts.extend(alu(pc=0x1000 + 4 * j, dest=9, srcs=(9,))
                     for j in range(8))
        addr = 0x3000 + 8 * i
        insts.append(store(addr, pc=0x1040, srcs=(9,)))
        insts.append(load(addr, pc=0x1044, dest=1))
    return Trace(insts, name="violations")


class TestStatsParity:
    @pytest.mark.parametrize("name", sorted(PRESET_MACHINES))
    def test_enabled_and_disabled_runs_bit_identical(self, name):
        machine = PRESET_MACHINES[name]
        trace = generate_trace("gzip", n_instructions=1200)
        plain = simulate(trace, machine)
        observed = simulate(trace, machine, obs=Observer())
        assert dataclasses.asdict(plain.stats) \
            == dataclasses.asdict(observed.stats)

    def test_parity_through_squash_recovery(self):
        machine = base_machine()
        plain = simulate(violation_trace(), machine, warm=False)
        observer = Observer()
        observed = simulate(violation_trace(), machine, warm=False,
                            obs=observer)
        assert plain.stats.violation_squashes > 0
        assert dataclasses.asdict(plain.stats) \
            == dataclasses.asdict(observed.stats)
        assert observer.bus.counts.get("violation_squash", 0) \
            == plain.stats.violation_squashes


class TestEvents:
    def test_bus_counts_and_limit(self):
        bus = EventBus(limit=3)
        bus.begin_cycle(7)
        for index in range(10):
            bus.emit("issue", seq=index)
        assert len(bus) == 3 and bus.dropped == 7
        assert bus.counts["issue"] == 10
        assert bus.total == 10
        assert all(event.cycle == 7 for event in bus.events())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventBus().emit("not-a-kind")

    def test_expected_kinds_observed(self):
        observer = Observer()
        simulate(violation_trace(), base_machine(), warm=False,
                 obs=observer)
        counts = observer.bus.counts
        for kind in ("issue", "forward", "violation_squash", "cache_miss",
                     "predictor_update"):
            assert counts.get(kind, 0) > 0, f"no {kind} events"
        assert set(counts) <= set(EVENT_KINDS)

    def test_segment_and_buffer_kinds_on_full_preset(self):
        observer = Observer()
        trace = generate_trace("gzip", n_instructions=2000)
        simulate(trace, PRESET_MACHINES["full"], obs=observer)
        counts = observer.bus.counts
        assert counts.get("segment_hop", 0) > 0
        assert counts.get("lb_insert", 0) == counts.get("lb_release", 0)

    def test_event_limit_keeps_counts_exact(self):
        trace = generate_trace("gzip", n_instructions=1200)
        capped = Observer(ObsConfig(event_limit=16))
        simulate(trace, base_machine(), obs=capped)
        uncapped = Observer()
        simulate(trace, base_machine(), obs=uncapped)
        assert len(capped.bus) == 16 and capped.bus.dropped > 0
        assert capped.bus.counts == uncapped.bus.counts


class TestCpiStack:
    @pytest.mark.parametrize("name", sorted(PRESET_MACHINES))
    def test_stack_sums_to_commit_slots(self, name):
        machine = PRESET_MACHINES[name]
        observer = Observer()
        result = simulate(generate_trace("gzip", n_instructions=1200),
                          machine, obs=observer)
        summary = observer.summary()
        width = machine.core.commit_width
        assert summary.cycles == result.stats.cycles
        assert sum(summary.cpi_slots.values()) \
            == result.stats.cycles * width == summary.total_slots
        assert summary.cpi_slots["commit"] == result.stats.committed

    def test_squash_recovery_attributed(self):
        observer = Observer()
        simulate(violation_trace(), base_machine(), warm=False,
                 obs=observer)
        assert observer.summary().cpi_slots["squash_recovery"] > 0


class TestSampler:
    def test_sampler_deterministic(self):
        trace = generate_trace("gzip", n_instructions=1200)
        runs = []
        for _ in range(2):
            observer = Observer(ObsConfig(sample_interval=32))
            simulate(trace, base_machine(), obs=observer)
            runs.append(observer.sampler.rows())
        assert runs[0] == runs[1] and len(runs[0]) > 0

    def test_sample_cadence_and_capacity(self):
        observer = Observer(ObsConfig(sample_interval=16,
                                      sample_capacity=4))
        simulate(generate_trace("gzip", n_instructions=1200),
                 base_machine(), obs=observer)
        rows = observer.sampler.rows()
        assert len(rows) == 4 and observer.sampler.dropped > 0
        cycles = [sample.cycle for sample in rows]
        assert all(b - a == 16 for a, b in zip(cycles, cycles[1:]))

    def test_csv_export(self):
        observer = Observer()
        simulate(generate_trace("gzip", n_instructions=800),
                 base_machine(), obs=observer)
        csv = observer.sampler.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("cycle,")
        assert len(lines) == len(observer.sampler.rows()) + 1


class TestChromeTrace:
    def _observed(self, with_tracer=False):
        observer = Observer()
        processor = Processor(base_machine(), obs=observer)
        tracer = None
        if with_tracer:
            tracer = PipelineTracer(limit=64)
            processor.tracer = tracer
        processor.run(generate_trace("gzip", n_instructions=800))
        return observer, tracer

    def test_export_is_schema_valid(self, tmp_path):
        observer, _ = self._observed()
        doc = export_chrome_trace(observer, label="test")
        assert validate_chrome_trace(doc) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), doc)
        assert validate_chrome_trace_file(str(path)) == []
        with open(path) as handle:
            assert json.load(handle)["otherData"]["label"] == "test"

    def test_pipeline_slices_included_with_tracer(self):
        observer, tracer = self._observed(with_tracer=True)
        doc = export_chrome_trace(observer, tracer=tracer)
        assert validate_chrome_trace(doc) == []
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert slices and counters and instants

    def test_validator_rejects_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 0,
                              "ts": 0}]}) != []  # X without dur


class TestCliVerbs:
    def test_trace_smoke(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cli.main(["trace", "--smoke"])
        out = capsys.readouterr().out
        assert "CPI stall attribution" in out and "Events" in out
        assert validate_chrome_trace_file(str(tmp_path / "trace.json")) \
            == []

    def test_profile_creates_and_merges_report(self, capsys, tmp_path):
        out = str(tmp_path / "BENCH_sweep.json")
        cli.main(["profile", "gzip", "-n", "400", "--top", "5",
                  "-o", out])
        assert "Hot functions" in capsys.readouterr().out
        with open(out) as handle:
            report = json.load(handle)
        assert len(report["profile"]["hot_functions"]) <= 5
        # Merging into an existing report preserves its cells.
        cli.main(["profile", "gzip", "-n", "400", "--lsq", "full",
                  "--ports", "1", "-o", out])
        with open(out) as handle:
            merged = json.load(handle)
        assert merged["cells"] == report["cells"]
        assert merged["profile"]["label"] == "full-1p"

    def test_bench_compare_gate(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.chdir(tmp_path)
        cli.main(["bench", "--smoke", "-o", "first.json"])
        cli.main(["bench", "--smoke", "-o", "second.json",
                  "--compare", "first.json"])
        assert "no regressions" in capsys.readouterr().out
        # A doctored baseline (halved sim times) must trip the gate.
        with open("first.json") as handle:
            doctored = json.load(handle)
        for row in doctored["cells"]:
            row["sim_s"] = row["sim_s"] / 4 or 1e-6
        with open("doctored.json", "w") as handle:
            json.dump(doctored, handle)
        with pytest.raises(SystemExit):
            cli.main(["bench", "--smoke", "-o", "third.json",
                      "--compare", "doctored.json"])
        assert "regression" in capsys.readouterr().out
