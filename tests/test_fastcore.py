"""Cross-backend contract tests for :mod:`repro.fastcore`.

The fast engine's whole promise is *bit-identical* ``SimStats`` — the
golden-digest suite pins that over the fixed (benchmark, seed, preset)
grid, while this module covers the parts the grid cannot:

* the engine cache must never serve a python-engine result where a
  fast-engine one was asked for (the backend is part of the cell
  digest),
* randomized small machines — widths, ROB sizes, presets, ports, and
  load-buffer capacities the pinned grid never visits — must still
  agree counter-for-counter across backends, and
* bench reports carry the ``backend`` tag and ``diff_reports`` refuses
  to compare across it.
"""

from __future__ import annotations

import random
from dataclasses import asdict, replace

import pytest

from repro.config import base_machine
from repro.harness.engine import (
    Cell,
    ReportBackendMismatch,
    ResultCache,
    SweepEngine,
    diff_reports,
    sweep_report,
)
from repro.pipeline.processor import simulate
from repro.workload import ALL_BENCHMARKS, generate_trace

#: The CLI's four preset factories, each taking ``ports=``.
from repro.cli import PRESETS


def _machine(preset: str, ports: int, backend: str = "python"):
    return replace(base_machine(), lsq=PRESETS[preset](ports=ports),
                   backend=backend)


class TestEngineCacheSeparation:
    def test_backend_is_part_of_the_cell_digest(self):
        python_cell = Cell(benchmark="gzip",
                           machine=_machine("conventional", 2, "python"))
        fast_cell = Cell(benchmark="gzip",
                         machine=_machine("conventional", 2, "fast"))
        assert python_cell.digest() != fast_cell.digest(), (
            "python- and fast-backend cells share a cache digest; a "
            "cached python result could be served for a fast run")

    def test_cache_round_trips_each_backend_separately(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "fastcore-test")
        engine = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "c"))
        cells = {backend: Cell(benchmark="gzip", n_instructions=300,
                               machine=_machine("full", 1, backend))
                 for backend in ("python", "fast")}
        first = {b: engine.run_cell(cell) for b, cell in cells.items()}
        assert not first["python"].cached and not first["fast"].cached
        second = {b: engine.run_cell(cell) for b, cell in cells.items()}
        assert second["python"].cached and second["fast"].cached
        # Distinct entries, identical modeled outcome.
        assert asdict(first["python"].result.stats) == \
            asdict(first["fast"].result.stats)
        assert asdict(second["fast"].result.stats) == \
            asdict(first["fast"].result.stats)


class TestRandomConfigParity:
    def test_fifty_random_small_configs_are_bit_identical(self):
        """Property-style sweep: 50 random small machines, both
        backends, every counter equal.  The seed is fixed so a failure
        reproduces; the configs deliberately wander outside the golden
        grid (narrow machines, tiny ROBs, odd load-buffer sizes)."""
        rng = random.Random(0xF457C0DE)
        for case in range(50):
            preset = rng.choice(sorted(PRESETS))
            ports = rng.choice([1, 2])
            lsq = PRESETS[preset](ports=ports)
            if lsq.load_buffer_entries and rng.random() < 0.5:
                lsq = replace(lsq,
                              load_buffer_entries=rng.choice([1, 2, 4]))
            width = rng.choice([2, 4, 8])
            core = replace(base_machine().core, fetch_width=width,
                           issue_width=width, commit_width=width,
                           rob_entries=rng.choice([48, 96, 256]))
            bench = rng.choice(ALL_BENCHMARKS)
            n = rng.randrange(150, 450)
            trace = generate_trace(bench, n_instructions=n,
                                   seed=rng.randrange(10_000))
            stats = {}
            for backend in ("python", "fast"):
                machine = replace(base_machine(), core=core, lsq=lsq,
                                  backend=backend)
                stats[backend] = asdict(simulate(trace, machine).stats)
            diffs = {field: (stats["python"][field], stats["fast"][field])
                     for field in stats["python"]
                     if stats["python"][field] != stats["fast"][field]}
            assert not diffs, (
                f"case {case}: {bench} n={n} {preset}-{ports}p "
                f"width={width} rob={core.rob_entries} "
                f"lb={lsq.load_buffer_entries} diverged: {diffs}")


class TestBackendTaggedReports:
    def _report(self, backend: str):
        cell = Cell(benchmark="gzip", n_instructions=200,
                    machine=_machine("conventional", 2, backend))
        engine = SweepEngine(jobs=1, cache=None)
        results = [engine.run_cell(cell)]
        return sweep_report(results, jobs=1, cache=None, wall_s=0.1)

    def test_sweep_report_records_the_backend(self):
        assert self._report("fast")["backend"] == "fast"
        assert self._report("python")["backend"] == "python"

    def test_diff_reports_refuses_mismatched_backends(self):
        with pytest.raises(ReportBackendMismatch):
            diff_reports(self._report("python"), self._report("fast"))

    def test_diff_reports_treats_untagged_reports_as_python(self):
        old = self._report("python")
        del old["backend"]
        # Legacy (pre-tag) baseline vs a tagged python run: comparable.
        assert diff_reports(old, self._report("python")) == []
        with pytest.raises(ReportBackendMismatch):
            diff_reports(old, self._report("fast"))


class TestCheckerFallback:
    def test_fast_backend_with_checker_still_validates(self):
        """A checker-attached run falls back to the reference engine
        (documented); stats must match a plain fast run exactly."""
        from repro.validate import ValidationChecker

        trace = generate_trace("gzip", n_instructions=400, seed=3)
        machine = _machine("full", 1, "fast")
        checked = simulate(trace, machine,
                           checker=ValidationChecker())
        plain = simulate(trace, machine)
        assert asdict(checked.stats) == asdict(plain.stats)
