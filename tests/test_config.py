"""Unit tests for repro.config."""

import pytest
from dataclasses import replace

from repro.config import (
    AllocationPolicy,
    BranchPredictorConfig,
    CacheConfig,
    ContentionPolicy,
    CoreConfig,
    LoadQueueSearchMode,
    LsqConfig,
    MachineConfig,
    MemoryConfig,
    PredictorMode,
    StoreSetConfig,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    scaled_machine,
    segmented_lsq,
    techniques_lsq,
)


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(size_bytes=64 * 1024, associativity=2,
                            block_bytes=32, hit_latency=2)
        assert cache.num_sets == 1024

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=48 * 1024, associativity=2,
                        block_bytes=32, hit_latency=2)

    def test_rejects_misaligned_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3,
                        block_bytes=32, hit_latency=2)


class TestStoreSetConfig:
    def test_defaults_match_table1(self):
        config = StoreSetConfig()
        assert config.ssit_entries == 4096
        assert config.lfst_entries == 128
        assert config.counter_bits == 3

    def test_counter_max(self):
        assert StoreSetConfig(counter_bits=3).counter_max == 7
        assert StoreSetConfig(counter_bits=1).counter_max == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            StoreSetConfig(ssit_entries=1000)

    def test_rejects_bad_counter_bits(self):
        with pytest.raises(ValueError):
            StoreSetConfig(counter_bits=0)
        with pytest.raises(ValueError):
            StoreSetConfig(counter_bits=9)


class TestLsqConfig:
    def test_defaults_are_base_case(self):
        lsq = LsqConfig()
        assert lsq.lq_entries == 32
        assert lsq.sq_entries == 32
        assert lsq.search_ports == 2
        assert lsq.predictor is PredictorMode.CONVENTIONAL
        assert not lsq.segmented

    def test_effective_entries_flat(self):
        lsq = LsqConfig(lq_entries=32, sq_entries=48)
        assert lsq.effective_lq_entries == 32
        assert lsq.effective_sq_entries == 48

    def test_effective_entries_segmented(self):
        lsq = LsqConfig(segments=4, segment_entries=28)
        assert lsq.effective_lq_entries == 112
        assert lsq.effective_sq_entries == 112

    def test_detection_point_follows_predictor(self):
        assert not LsqConfig(predictor=PredictorMode.CONVENTIONAL
                             ).detection_at_commit
        assert LsqConfig(predictor=PredictorMode.PAIR).detection_at_commit
        assert LsqConfig(predictor=PredictorMode.AGGRESSIVE
                         ).detection_at_commit
        assert not LsqConfig(predictor=PredictorMode.PERFECT
                             ).detection_at_commit

    def test_detection_point_override(self):
        lsq = LsqConfig(predictor=PredictorMode.PAIR, detect_at_commit=False)
        assert not lsq.detection_at_commit
        lsq = LsqConfig(detect_at_commit=True)
        assert lsq.detection_at_commit

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            LsqConfig(search_ports=0)

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValueError):
            LsqConfig(load_buffer_entries=-1)

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            LsqConfig(segments=0)


class TestCoreConfig:
    def test_table1_defaults(self):
        core = CoreConfig()
        assert core.issue_width == 8
        assert core.rob_entries == 256
        assert core.issue_queue_entries == 64
        assert core.int_units == 8
        assert core.fp_units == 8
        assert core.branch_mispredict_penalty == 14

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)


class TestPresets:
    def test_base_machine_is_table1(self):
        machine = base_machine()
        assert machine.core.issue_width == 8
        assert machine.memory.l1d.size_bytes == 64 * 1024
        assert machine.memory.l1d.ports == 4
        assert machine.memory.l2.size_bytes == 2 * 1024 * 1024
        assert machine.memory.memory_latency == 150
        assert machine.lsq.search_ports == 2

    def test_base_machine_lsq_overrides(self):
        machine = base_machine(search_ports=1,
                               predictor=PredictorMode.PAIR)
        assert machine.lsq.search_ports == 1
        assert machine.lsq.predictor is PredictorMode.PAIR

    def test_scaled_machine(self):
        machine = scaled_machine()
        assert machine.core.issue_width == 12
        assert machine.core.issue_queue_entries == 96
        assert machine.memory.l1d.hit_latency == 3
        assert machine.memory.l1i.hit_latency == 3
        # cache sizes unchanged
        assert machine.memory.l1d.size_bytes == 64 * 1024

    def test_conventional_lsq(self):
        lsq = conventional_lsq(ports=4)
        assert lsq.search_ports == 4
        assert lsq.predictor is PredictorMode.CONVENTIONAL
        assert lsq.lq_search is LoadQueueSearchMode.SEARCH_LQ

    def test_techniques_lsq(self):
        lsq = techniques_lsq(ports=1)
        assert lsq.predictor is PredictorMode.PAIR
        assert lsq.lq_search is LoadQueueSearchMode.LOAD_BUFFER
        assert lsq.load_buffer_entries == 2
        assert not lsq.segmented

    def test_segmented_lsq(self):
        lsq = segmented_lsq()
        assert lsq.segments == 4
        assert lsq.segment_entries == 28
        assert lsq.allocation is AllocationPolicy.SELF_CIRCULAR
        assert lsq.predictor is PredictorMode.CONVENTIONAL

    def test_full_techniques_lsq(self):
        lsq = full_techniques_lsq()
        assert lsq.segmented
        assert lsq.predictor is PredictorMode.PAIR
        assert lsq.lq_search is LoadQueueSearchMode.LOAD_BUFFER

    def test_with_lsq_returns_new_machine(self):
        machine = base_machine()
        other = machine.with_lsq(search_ports=1)
        assert machine.lsq.search_ports == 2
        assert other.lsq.search_ports == 1

    def test_with_core_returns_new_machine(self):
        machine = base_machine()
        other = machine.with_core(issue_width=4)
        assert machine.core.issue_width == 8
        assert other.core.issue_width == 4

    def test_machine_config_is_hashable(self):
        assert hash(base_machine()) == hash(base_machine())
        assert base_machine() == base_machine()
        assert base_machine(search_ports=1) != base_machine()
