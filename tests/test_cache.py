"""Unit tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import Cache


def small_cache(assoc=2, sets=4, block=32):
    return Cache(CacheConfig(size_bytes=assoc * sets * block,
                             associativity=assoc, block_bytes=block,
                             hit_latency=2), name="test")


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)

    def test_same_block_hits(self):
        cache = small_cache(block=32)
        cache.fill(0x100)
        assert cache.lookup(0x100 + 31)
        assert not cache.lookup(0x100 + 32)

    def test_stats(self):
        cache = small_cache()
        cache.lookup(0)           # miss
        cache.fill(0)
        cache.lookup(0)           # hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.accesses == 2
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.fill(0x40)
        hits, misses = cache.stats.hits, cache.stats.misses
        assert cache.contains(0x40)
        assert not cache.contains(0x80000)
        assert (cache.stats.hits, cache.stats.misses) == (hits, misses)


class TestLru:
    def test_eviction_order(self):
        cache = small_cache(assoc=2, sets=1, block=32)
        cache.fill(0 * 32)
        cache.fill(1 * 32)
        cache.lookup(0)            # touch block 0: block 1 is now LRU
        cache.fill(2 * 32)         # evicts block 1
        assert cache.contains(0)
        assert not cache.contains(32)
        assert cache.contains(64)

    def test_associativity_bound(self):
        cache = small_cache(assoc=4, sets=1, block=32)
        for i in range(4):
            cache.fill(i * 32)
        assert all(cache.contains(i * 32) for i in range(4))
        cache.fill(4 * 32)
        assert not cache.contains(0)

    def test_sets_are_independent(self):
        cache = small_cache(assoc=1, sets=4, block=32)
        for s in range(4):
            cache.fill(s * 32)
        assert all(cache.contains(s * 32) for s in range(4))


class TestWriteback:
    def test_clean_eviction_returns_none(self):
        cache = small_cache(assoc=1, sets=1, block=32)
        cache.fill(0, dirty=False)
        assert cache.fill(1024) is None
        assert cache.stats.writebacks == 0

    def test_dirty_eviction_returns_victim(self):
        cache = small_cache(assoc=1, sets=1, block=32)
        cache.fill(0, dirty=True)
        victim = cache.fill(1024)
        assert victim == 0
        assert cache.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = small_cache(assoc=1, sets=1, block=32)
        cache.fill(0)
        cache.lookup(0, write=True)
        assert cache.fill(1024) == 0  # dirty writeback

    def test_victim_address_reconstruction(self):
        cache = small_cache(assoc=1, sets=4, block=32)
        addr = 7 * 4 * 32 + 2 * 32   # tag 7, set 2
        cache.fill(addr, dirty=True)
        victim = cache.fill(addr + 4 * 32 * 16)  # same set, new tag
        assert victim == addr - addr % 32

    def test_refill_existing_block_keeps_dirty(self):
        cache = small_cache(assoc=2, sets=1, block=32)
        cache.fill(0, dirty=True)
        assert cache.fill(0, dirty=False) is None
        assert cache.fill(32) is None
        victim = cache.fill(64)  # evicts block 0, still dirty
        assert victim == 0


class TestInvalidate:
    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0)
        cache.invalidate_all()
        assert not cache.contains(0)
