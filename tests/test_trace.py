"""Unit tests for the trace container and its binary format."""

import pytest

from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace, concatenate
from tests.conftest import alu, branch, load, store


class TestTraceContainer:
    def test_len_and_indexing(self):
        trace = Trace([alu(pc=0), alu(pc=4), alu(pc=8)])
        assert len(trace) == 3
        assert trace[1].pc == 4

    def test_slicing_returns_trace(self):
        trace = Trace([alu(pc=4 * i) for i in range(10)], name="t")
        sub = trace[2:5]
        assert isinstance(sub, Trace)
        assert len(sub) == 3
        assert sub.name == "t"

    def test_iteration(self):
        insts = [alu(pc=4 * i) for i in range(5)]
        trace = Trace(insts)
        assert list(trace) == insts

    def test_stats(self):
        trace = Trace([alu(), load(0x100), load(0x108), store(0x100),
                       branch()])
        stats = trace.stats()
        assert stats.instructions == 5
        assert stats.loads == 2
        assert stats.stores == 1
        assert stats.branches == 1
        assert stats.load_fraction == pytest.approx(0.4)
        assert stats.store_fraction == pytest.approx(0.2)
        assert stats.branch_fraction == pytest.approx(0.2)

    def test_fp_stats(self):
        trace = Trace([
            Instruction(pc=0, op=OpClass.FP_ALU, dest=40),
            Instruction(pc=4, op=OpClass.FP_LOAD, dest=41, addr=8),
            alu(),
        ])
        assert trace.stats().fp_ops == 2

    def test_cold_regions(self):
        trace = Trace([alu()], cold_regions=[(0x1000, 0x2000)])
        assert trace.is_cold_address(0x1000)
        assert trace.is_cold_address(0x1fff)
        assert not trace.is_cold_address(0x2000)
        assert not trace.is_cold_address(0x0fff)

    def test_slices_keep_cold_regions(self):
        trace = Trace([alu(), alu()], cold_regions=[(0, 10)])
        assert trace[:1].is_cold_address(5)

    def test_concatenate(self):
        a = Trace([alu(pc=0)])
        b = Trace([alu(pc=4), alu(pc=8)])
        joined = concatenate([a, b], name="joined")
        assert len(joined) == 3
        assert joined.name == "joined"


class TestSerialisation:
    def test_roundtrip(self, tmp_path):
        insts = [
            alu(pc=0x100, dest=3, srcs=(1, 2)),
            load(0xDEADBEE8, pc=0x104, dest=4, srcs=(3,)),
            store(0x1234, pc=0x108, srcs=(4, 5)),
            branch(pc=0x10C, taken=True, target=0x100, srcs=(4,)),
            Instruction(pc=0x110, op=OpClass.FP_MUL, dest=40, srcs=(41, 42)),
        ]
        trace = Trace(insts, name="roundtrip",
                      cold_regions=[(0x1000, 0x2000)])
        path = tmp_path / "t.lsqtrace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.cold_regions == ((0x1000, 0x2000),)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a == b

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bogus.lsqtrace"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="not an .lsqtrace"):
            Trace.load(path)

    def test_rejects_too_many_sources(self, tmp_path):
        trace = Trace([Instruction(pc=0, op=OpClass.INT_ALU, dest=1,
                                   srcs=(1, 2, 3, 4))])
        with pytest.raises(ValueError, match="at most 3"):
            trace.save(tmp_path / "t.lsqtrace")

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = Trace([], name="empty")
        path = tmp_path / "e.lsqtrace"
        trace.save(path)
        assert len(Trace.load(path)) == 0
