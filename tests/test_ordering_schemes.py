"""Tests for the Section 2.2 alternative ordering schemes: memory
barriers and invalidation-driven detection."""

import pytest
from dataclasses import replace

from repro.config import LoadQueueSearchMode, LsqConfig, base_machine
from repro.pipeline.processor import simulate
from repro.workload import generate_trace, profile_for
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace
from tests.conftest import alu, filler, load, store


def membar(pc=0x7000):
    return Instruction(pc=pc, op=OpClass.MEMBAR)


class TestMembarSemantics:
    def test_membar_waits_for_older_load_data(self):
        # miss-load ; membar ; 200 independent ALUs.  The barrier holds
        # its own completion (and commit order) until the miss returns.
        insts = ([load(0x40000000, pc=0x100, dest=1), membar(0x104)]
                 + filler(200))
        trace = Trace(insts, cold_regions=[(0x40000000, 0x50000000)])
        with_bar = simulate(trace, base_machine(
            lq_search=LoadQueueSearchMode.MEMBAR))
        no_bar = simulate(Trace([insts[0]] + filler(201),
                                cold_regions=[(0x40000000, 0x50000000)]),
                          base_machine())
        assert with_bar.stats.membar_stalls > 0
        assert with_bar.stats.committed == len(insts)

    def test_membar_blocks_younger_loads(self):
        # store(miss-region) ; membar ; load: the load cannot start until
        # the membar clears, which waits on the store's address.
        insts = [store(0x2000, pc=0x100), membar(0x104),
                 load(0x2008, pc=0x108, dest=1)] + filler(50)
        result = simulate(Trace(insts), base_machine(
            lq_search=LoadQueueSearchMode.MEMBAR))
        assert result.stats.committed == len(insts)
        assert result.stats.committed_membars == 1

    def test_membar_mode_skips_lq_searches(self):
        insts = []
        for i in range(100):
            insts.append(load(0x1000 + 8 * i, pc=0x100 + 4 * (i % 8),
                              dest=(i % 8) + 1))
        base = simulate(Trace(insts), base_machine()).stats
        no_search = simulate(Trace(insts), base_machine(
            lq_search=LoadQueueSearchMode.MEMBAR)).stats
        assert base.lq_searches > 0
        assert no_search.lq_searches == 0

    def test_useful_ipc_excludes_membars(self):
        insts = [membar(0x100 + 4 * i) if i % 2 else alu(pc=0x100 + 4 * i)
                 for i in range(100)]
        result = simulate(Trace(insts), base_machine(
            lq_search=LoadQueueSearchMode.MEMBAR))
        stats = result.stats
        assert stats.committed_membars == 50
        assert stats.useful_ipc < stats.ipc

    def test_conservative_barriers_hurt(self):
        plain = profile_for("mgrid")
        barred = replace(plain, membar_policy="conservative")
        plain_trace = generate_trace(plain, n_instructions=2500)
        barred_trace = generate_trace(barred, n_instructions=2500)
        fast = simulate(plain_trace, base_machine()).stats.useful_ipc
        slow = simulate(barred_trace, base_machine(
            lq_search=LoadQueueSearchMode.MEMBAR)).stats.useful_ipc
        assert slow < 0.8 * fast


class TestMembarGeneration:
    def test_conservative_policy_emits_barriers(self):
        profile = replace(profile_for("gzip"), membar_policy="conservative")
        trace = generate_trace(profile, n_instructions=2000)
        membars = sum(1 for inst in trace if inst.op.is_membar)
        loads = trace.stats().loads
        assert membars >= loads * 0.8

    def test_none_policy_emits_none(self):
        trace = generate_trace("gzip", n_instructions=1000)
        assert not any(inst.op.is_membar for inst in trace)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="membar_policy"):
            replace(profile_for("gzip"), membar_policy="sometimes")


class TestInvalidationScheme:
    def test_injects_searches_at_configured_rate(self):
        trace = generate_trace("gzip", n_instructions=4000)
        result = simulate(trace, base_machine(
            lq_search=LoadQueueSearchMode.INVALIDATION,
            invalidation_rate=0.01))
        stats = result.stats
        assert stats.invalidation_searches > 0
        # Invalidation searches are the *only* LQ traffic from ordering;
        # stores' premature-load checks remain.
        assert stats.invalidation_searches <= stats.lq_searches

    def test_zero_rate_never_searches(self):
        trace = generate_trace("gzip", n_instructions=2000)
        result = simulate(trace, base_machine(
            lq_search=LoadQueueSearchMode.INVALIDATION,
            invalidation_rate=0.0))
        assert result.stats.invalidation_searches == 0

    def test_completes_whole_trace(self):
        trace = generate_trace("mgrid", n_instructions=2000)
        result = simulate(trace, base_machine(
            lq_search=LoadQueueSearchMode.INVALIDATION,
            invalidation_rate=0.05))
        assert result.stats.committed == len(trace)
