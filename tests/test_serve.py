"""Simulation-as-a-service (``repro.serve``).

* The spec grammar accepts exactly what ``repro bench`` accepts —
  including ``litmus/...`` names — and rejects everything else with a
  client-facing message; expanded cells are digest-compatible with the
  CLI's, so either surface warms the cache for the other.
* The single-flight table runs one computation per key no matter how
  many awaiters pile on, propagates the leader's error to every
  joiner, and empties itself afterwards.
* The work-stealing pool returns results bit-identical to the serial
  engine, steals across backlogs, and contains a worker crash to the
  cell that crashed — the worker respawns and the pool keeps serving.
* The HTTP server end to end: submit/stream/result, warm hits served
  from disk in well under the SLO, concurrent overlapping jobs
  coalesced (each unique cell computed exactly once), backpressure as
  429 -> :class:`Backpressure`, bad specs as 400 -> ``SpecRejected``.
"""

import asyncio
import dataclasses

import pytest

from repro.harness.engine import Cell, ResultCache, SweepEngine
from repro.serve.bench import ServerHarness, diff_service_reports
from repro.serve.client import (
    Backpressure,
    ServeClient,
    ServeError,
    SpecRejected,
    generate_load,
)
from repro.serve.jobs import Busy, JobStore
from repro.serve.scheduler import CRASH_BENCHMARK, WorkerCrash, WorkerPool
from repro.serve.server import ServeConfig
from repro.serve.singleflight import SingleFlight
from repro.serve.spec import (
    SpecError,
    expand_cells,
    parse_spec,
    smoke_spec,
)

N = 300  # instructions per cell: enough pipeline, fast enough for CI


def spec_payload(**overrides):
    payload = {"benchmarks": ["gzip"], "presets": ["conventional"],
               "seeds": [0], "n_instructions": N}
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------------
# spec grammar


class TestSpec:
    def test_parse_roundtrip_and_defaults(self):
        spec = parse_spec({"benchmarks": ["gzip", "mgrid"]})
        assert spec.presets == ("conventional", "full")
        assert spec.seeds == (0,)
        assert spec.n_instructions == 6000
        assert parse_spec(spec.as_payload()) == spec

    def test_litmus_names_accepted(self):
        spec = parse_spec(spec_payload(
            benchmarks=["litmus/mp", "litmus/sb+fence"]))
        assert spec.n_cells == 2

    @pytest.mark.parametrize("payload, fragment", [
        ("not a dict", "JSON object"),
        (spec_payload(benchmarks=["nosuchbench"]), "unknown benchmark"),
        (spec_payload(benchmarks=["litmus/nosuchshape"]), "litmus"),
        (spec_payload(benchmarks=[]), "non-empty"),
        (spec_payload(presets=["nosuchpreset"]), "unknown preset"),
        (spec_payload(seeds=[]), "non-empty"),
        (spec_payload(seeds=[True]), "integers"),
        (spec_payload(seeds=["0"]), "integers"),
        (spec_payload(n_instructions=0), "positive"),
        (spec_payload(n_instructions=10**9), "capped"),
        (spec_payload(seed=[0]), "unknown spec field"),
        (spec_payload(obs="yes"), "boolean"),
    ])
    def test_rejections_are_client_facing(self, payload, fragment):
        with pytest.raises(SpecError) as excinfo:
            parse_spec(payload)
        assert fragment in str(excinfo.value)

    def test_expand_matches_bench_cells(self):
        """Serve cells must be cache-compatible with ``repro bench``:
        same machine, same digest, same labels and port pairing."""
        from dataclasses import replace

        from repro.cli import BENCH_DEFAULT_PORTS, PRESETS
        from repro.config import base_machine

        spec = parse_spec({"benchmarks": ["gzip"],
                           "presets": ["conventional", "full"],
                           "seeds": [0, 1], "n_instructions": N})
        cells = expand_cells(spec)
        assert len(cells) == spec.n_cells == 4
        expected = []
        for preset in ("conventional", "full"):
            ports = BENCH_DEFAULT_PORTS[preset]
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=ports))
            for seed in (0, 1):
                expected.append(Cell(
                    benchmark="gzip", machine=machine, seed=seed,
                    n_instructions=N, label=f"{preset}-{ports}p"))
        assert [c.digest() for c in cells] \
            == [c.digest() for c in expected]
        assert [c.label for c in cells] == [c.label for c in expected]

    def test_smoke_spec_parses(self):
        spec = parse_spec(smoke_spec())
        assert spec.n_cells == 4


# ---------------------------------------------------------------------------
# single-flight


class TestSingleFlight:
    def test_concurrent_same_key_computes_once(self):
        async def scenario():
            flights = SingleFlight()
            calls = []

            async def compute():
                calls.append(1)
                await asyncio.sleep(0.01)
                return "value"

            results = await asyncio.gather(*[
                flights.run("k", compute) for _ in range(8)])
            return flights, calls, results

        flights, calls, results = asyncio.run(scenario())
        assert len(calls) == 1
        assert [value for _led, value in results] == ["value"] * 8
        assert sum(1 for led, _ in results if led) == 1
        assert flights.leaders == 1 and flights.joined == 7
        assert flights.inflight() == 0

    def test_distinct_keys_run_independently(self):
        async def scenario():
            flights = SingleFlight()

            async def compute(key):
                await asyncio.sleep(0.01)
                return key.upper()

            results = await asyncio.gather(
                flights.run("a", lambda: compute("a")),
                flights.run("b", lambda: compute("b")))
            return flights, results

        flights, results = asyncio.run(scenario())
        assert [value for _led, value in results] == ["A", "B"]
        assert flights.leaders == 2 and flights.joined == 0

    def test_leader_error_reaches_joiners_then_clears(self):
        async def scenario():
            flights = SingleFlight()

            async def boom():
                await asyncio.sleep(0.01)
                raise ValueError("leader failed")

            results = await asyncio.gather(
                *[flights.run("k", boom) for _ in range(3)],
                return_exceptions=True)
            # the key is free again: a retry computes fresh
            async def fine():
                return 42
            led, value = await flights.run("k", fine)
            return results, led, value

        results, led, value = asyncio.run(scenario())
        assert all(isinstance(r, ValueError) for r in results)
        assert led and value == 42


# ---------------------------------------------------------------------------
# work-stealing pool


class TestWorkerPool:
    def test_matches_serial_engine_and_steals(self, tmp_path):
        """Pool results are bit-identical to the serial engine, and an
        unbalanced backlog gets stolen from."""
        cells = expand_cells(parse_spec(spec_payload(
            benchmarks=["gzip", "mgrid"], seeds=[0, 1])))
        serial = SweepEngine(jobs=1, cache=None)
        expected = [serial.run_cell(cell) for cell in cells]

        async def scenario():
            pool = WorkerPool(workers=2, cache_dir=tmp_path / "cache")
            await pool.start()
            try:
                return await asyncio.gather(
                    *[pool.submit(cell) for cell in cells]), pool.computed
            finally:
                await pool.close()

        results, computed = asyncio.run(scenario())
        assert computed == len(cells)
        for got, want in zip(results, expected):
            assert got.result.stats.cycles == want.result.stats.cycles
            assert got.result.stats.committed \
                == want.result.stats.committed
            assert got.ipc == want.ipc

    def test_crash_contained_to_one_cell(self, tmp_path):
        cells = expand_cells(parse_spec(spec_payload(seeds=[0, 1, 2])))
        bad = dataclasses.replace(cells[0], benchmark=CRASH_BENCHMARK)

        async def scenario():
            pool = WorkerPool(workers=2, cache_dir=tmp_path / "cache")
            await pool.start()
            try:
                results = await asyncio.gather(
                    *[pool.submit(c) for c in [cells[0], bad, cells[1]]],
                    return_exceptions=True)
                # the fleet healed: a fresh cell still computes
                after = await pool.submit(cells[2])
                return results, after, pool.respawns
            finally:
                await pool.close()

        results, after, respawns = asyncio.run(scenario())
        kinds = [type(r).__name__ for r in results]
        assert kinds.count("WorkerCrash") == 1
        assert kinds.count("CellResult") == 2
        assert respawns >= 1
        assert after.result.stats.committed > 0


# ---------------------------------------------------------------------------
# job store admission


class TestJobStore:
    def test_admission_cap_and_retry_hint(self):
        store = JobStore(max_active=2, retry_after_s=3.0)
        spec = parse_spec(spec_payload())
        cells = expand_cells(spec)
        store.admit(spec, cells)
        store.admit(spec, cells)
        with pytest.raises(Busy) as excinfo:
            store.admit(spec, cells)
        assert excinfo.value.retry_after_s == 3.0
        assert store.rejected == 1

    def test_job_ids_are_deterministic(self):
        store = JobStore()
        spec = parse_spec(spec_payload())
        cells = expand_cells(spec)
        assert store.admit(spec, cells).id == "job-000001"
        assert store.admit(spec, cells).id == "job-000002"


# ---------------------------------------------------------------------------
# the server, end to end


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    config = ServeConfig(port=0, workers=2, cache_dir=str(cache_dir))
    with ServerHarness(config) as running:
        yield running


@pytest.fixture(scope="module")
def client(harness):
    return ServeClient(port=harness.port)


@pytest.mark.slow
class TestServerEndToEnd:
    def test_results_bit_identical_to_serial_bench(self, client):
        payload = spec_payload(benchmarks=["gzip", "mgrid"], seeds=[0])
        job = client.submit(payload)
        final = client.wait(str(job["id"]))
        assert final["job"]["state"] == "done"
        assert final["job"]["failed"] == 0

        serial = SweepEngine(jobs=1, cache=None)
        for row, cell in zip(final["cells"],
                             expand_cells(parse_spec(payload))):
            want = serial.run_cell(cell)
            assert row["status"] == "done"
            assert row["ipc"] == round(want.ipc, 6)
            assert row["cycles"] == want.result.stats.cycles
            assert row["committed"] == want.result.stats.committed

    def test_warm_resubmit_is_all_cache_and_fast(self, client):
        payload = spec_payload(benchmarks=["gzip", "mgrid"], seeds=[0])
        job = client.submit(payload)       # warmed by the test above
        final = client.wait(str(job["id"]))
        sources = {row["source"] for row in final["cells"]}
        assert sources == {"cache"}
        latencies = sorted(row["service_ms"] for row in final["cells"])
        assert latencies[len(latencies) // 2] < 5.0  # the serving SLO

    def test_concurrent_overlap_coalesces(self, client, harness):
        """Two clients racing on the same cold sweep: every unique
        cell is computed exactly once, the rest join in flight."""
        payload = spec_payload(benchmarks=["gzip"], seeds=[71, 72])
        before = client.stats()["cells"]
        load = generate_load(harness.config.host, harness.port,
                             [payload, payload], clients=2)
        assert load["jobs_completed"] == 2
        assert load["failed_cells"] == 0
        after = client.stats()["cells"]
        requested = after["requested"] - before["requested"]
        computed = after["computed"] - before["computed"]
        coalesced = after["coalesced"] - before["coalesced"]
        assert requested == 4          # 2 jobs x 2 unique cells
        assert computed == 2           # each unique cell exactly once
        assert coalesced == 2

    def test_streamed_events_carry_obs_tail(self, client):
        job = client.submit(spec_payload(obs=True, seeds=[73]))
        cell_events = [event for event in client.stream(str(job["id"]))
                       if event.get("event") == "cell"]
        assert cell_events
        for event in cell_events:
            assert event["obs"]["samples"] > 0
            assert event["obs"]["tail"], "stream tail missing"
            assert {"cycle", "ipc", "rob_occ"} \
                <= set(event["obs"]["tail"][0])

    def test_bad_spec_is_rejected_not_admitted(self, client):
        with pytest.raises(SpecRejected) as excinfo:
            client.submit(spec_payload(benchmarks=["nosuchbench"]))
        assert "unknown benchmark" in str(excinfo.value)

    def test_unknown_job_and_route(self, client):
        with pytest.raises(ServeError):
            client.job("job-999999")
        with pytest.raises(ServeError):
            client._request("GET", "/nosuchroute")

    def test_result_while_running_conflicts(self, client):
        job = client.submit(spec_payload(
            benchmarks=["gzip", "mgrid"], seeds=[74, 75, 76],
            n_instructions=4000))
        job_id = str(job["id"])
        with pytest.raises(ServeError) as excinfo:
            client.result(job_id)
        assert "409" in str(excinfo.value)
        client.wait(job_id)  # drain so the module fixture closes clean


@pytest.mark.slow
def test_backpressure_over_http(tmp_path):
    """With max_jobs=1 and a slow job in flight, the second submit is
    429 + Retry-After, surfaced as :class:`Backpressure`."""
    config = ServeConfig(port=0, workers=1, max_jobs=1,
                         retry_after_s=2.0,
                         cache_dir=str(tmp_path / "cache"))
    with ServerHarness(config) as harness:
        client = ServeClient(port=harness.port)
        slow = spec_payload(benchmarks=["gzip", "mgrid"],
                            seeds=[0, 1], n_instructions=6000)
        first = client.submit(slow)
        with pytest.raises(Backpressure) as excinfo:
            client.submit(spec_payload())
        assert excinfo.value.retry_after_s == pytest.approx(2.0)
        client.wait(str(first["id"]))
        # capacity freed: the same submit is admitted now
        job = client.submit(spec_payload())
        final = client.wait(str(job["id"]))
        assert final["job"]["failed"] == 0


# ---------------------------------------------------------------------------
# engine additions the server leans on


class TestEngineAsyncApi:
    def test_probe_is_cache_only(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(jobs=1, cache=cache)
        cell = expand_cells(parse_spec(spec_payload()))[0]
        assert engine.probe_cell(cell) is None     # cold: no compute
        computed = engine.run_cell(cell)
        probed = engine.probe_cell(cell)
        assert probed is not None and probed.cached
        assert probed.ipc == computed.ipc
        assert probed.result.stats.cycles == computed.result.stats.cycles

    def test_run_cell_async_matches_sync(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(jobs=1, cache=cache)
        cell = expand_cells(parse_spec(spec_payload()))[0]

        first = asyncio.run(engine.run_cell_async(cell))
        assert not first.cached
        second = asyncio.run(engine.run_cell_async(cell))
        assert second.cached
        assert second.ipc == first.ipc


# ---------------------------------------------------------------------------
# the service-report gate


class TestServiceDiff:
    def good(self):
        return {
            "kind": "service", "calibration_s": 1.0,
            "cold": {"n_cells": 4, "wall_s": 1.0, "cells_per_s": 4.0,
                     "failed": 0},
            "coalescing": {"requested": 8, "computed": 4, "ratio": 0.5},
            "warm": {"p50_ms": 0.3, "p90_ms": 0.5, "max_ms": 1.0},
        }

    def test_clean_pair_passes(self):
        assert diff_service_reports(self.good(), self.good()) == []

    def test_slo_breach_fails(self):
        bad = self.good()
        bad["warm"]["p50_ms"] = 7.5
        failures = diff_service_reports(self.good(), bad)
        assert any("SLO" in failure for failure in failures)

    def test_throughput_collapse_fails(self):
        bad = self.good()
        bad["cold"]["cells_per_s"] = 1.0
        failures = diff_service_reports(self.good(), bad)
        assert any("throughput" in failure for failure in failures)

    def test_normalize_only_relaxes(self):
        bad = self.good()
        bad["cold"]["cells_per_s"] = 1.6
        bad["calibration_s"] = 3.0   # much slower machine
        assert diff_service_reports(self.good(), bad,
                                    normalize=True) == []
        failures = diff_service_reports(self.good(), bad)
        assert failures  # without normalize the same drop fails

    def test_coalescing_regression_fails(self):
        bad = self.good()
        bad["coalescing"]["ratio"] = 1.0
        failures = diff_service_reports(self.good(), bad)
        assert any("coalescing" in failure for failure in failures)
