"""Tests for the pipeline tracer, ASCII plots, and the CLI."""

import pytest

from repro.config import base_machine
from repro.harness.figures import ExperimentResult
from repro.harness.plots import bar_chart, sparkline
from repro.pipeline.debug import PipelineTracer
from repro.pipeline.processor import Processor
from repro.workload.synthetic import generate_trace
from repro.workload.trace import Trace
from repro import cli
from tests.conftest import filler


@pytest.fixture(scope="module")
def traced_run():
    trace = generate_trace("gzip", n_instructions=400)
    processor = Processor(base_machine())
    processor.tracer = PipelineTracer(limit=100)
    processor.run(trace)
    return processor.tracer


class TestPipelineTracer:
    def test_records_all_stages(self, traced_run):
        record = traced_run.record(10)
        assert record is not None
        assert record.dispatch is not None
        assert record.issue is not None
        assert record.complete is not None
        assert record.commit is not None

    def test_stage_order_monotone(self, traced_run):
        for seq in range(5, 50):
            rec = traced_run.record(seq)
            if rec is None or rec.squash is not None:
                continue
            assert rec.dispatch <= rec.issue <= rec.complete <= rec.commit

    def test_latency(self, traced_run):
        latency = traced_run.latency(10)
        assert latency is not None and latency > 0

    def test_limit_respected(self, traced_run):
        assert len(traced_run.records) <= 100

    def test_render_contains_glyphs(self, traced_run):
        text = traced_run.render(5, 15)
        assert "D" in text and "I" in text
        assert "cycles" in text

    def test_render_empty_range(self, traced_run):
        assert "no recorded" in traced_run.render(10_000, 10_001)

    @staticmethod
    def _violation_run():
        from tests.conftest import alu, load, store
        insts = []
        for i in range(30):
            chain = [alu(pc=0x1000 + 4 * j, dest=9, srcs=(9,))
                     for j in range(8)]
            insts.extend(chain)
            addr = 0x3000 + 8 * i
            insts.append(store(addr, pc=0x1040, srcs=(9,)))
            insts.append(load(addr, pc=0x1044, dest=1))
        processor = Processor(base_machine())
        processor.tracer = PipelineTracer(limit=400)
        processor.run(Trace(insts), warm=False)
        return processor.tracer

    def test_squash_recorded(self):
        assert self._violation_run().squashed_seqs()

    def test_squashed_rows_rendered_at_window(self):
        # Regression: a render window centred on a squashed instruction
        # must show its 'x' glyph (squashed rows used to be easy to lose
        # at the window boundary because the squash cycle can lie far
        # from the dispatch cycle).
        tracer = self._violation_run()
        for seq in sorted(tracer.squashed_seqs()):
            text = tracer.render(seq, seq)
            assert "x" in text.splitlines()[-1], \
                f"squashed seq {seq} rendered without its squash glyph"


class TestPlots:
    def make_result(self):
        return ExperimentResult(
            name="demo", headers=["bench", "a", "b"],
            rows=[["gzip", "+10.0%", "-5.0%"],
                  ["mgrid", "+20.0%", "+1.0%"]])

    def test_bar_chart_renders(self):
        chart = bar_chart(self.make_result())
        assert "gzip" in chart and "mgrid" in chart
        assert "#" in chart     # first series glyph
        assert "|" in chart     # zero axis

    def test_bar_chart_handles_ratios(self):
        result = ExperimentResult(name="r", headers=["bench", "x"],
                                  rows=[["gzip", "0.28"], ["mgrid", "0.04"]])
        chart = bar_chart(result)
        assert "0.28" in chart

    def test_bar_chart_empty_values_fall_back(self):
        result = ExperimentResult(name="r", headers=["bench", "x"],
                                  rows=[["gzip", "n/a"]])
        assert "gzip" in bar_chart(result)

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] != line[-1]

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([2, 2, 2]))) == 1


class TestCli:
    def test_run_command(self, capsys):
        cli.main(["run", "gzip", "-n", "600"])
        out = capsys.readouterr().out
        assert "IPC" in out and "pressure source" in out

    def test_run_with_preset(self, capsys):
        cli.main(["run", "gzip", "-n", "600", "--lsq", "full",
                  "--ports", "1"])
        assert "IPC" in capsys.readouterr().out

    def test_gentrace_command_roundtrip(self, capsys, tmp_path):
        out_file = str(tmp_path / "t.lsqtrace")
        cli.main(["gentrace", "gzip", "-n", "500", "-o", out_file])
        out = capsys.readouterr().out
        assert "mix:" in out and "saved" in out
        cli.main(["gentrace", out_file])
        assert "mix:" in capsys.readouterr().out

    def test_pipetrace_command(self, capsys):
        cli.main(["pipetrace", "gzip", "-n", "400", "--first", "0",
                  "--last", "10"])
        assert "cycles" in capsys.readouterr().out

    def test_trace_command_with_pipetrace(self, capsys, tmp_path):
        out_file = str(tmp_path / "trace.json")
        cli.main(["trace", "gzip", "-n", "400", "--pipetrace", "40",
                  "-o", out_file])
        out = capsys.readouterr().out
        assert "CPI stall attribution" in out
        assert "cycles" in out          # the rendered pipetrace window
        assert "ui.perfetto.dev" in out

    def test_figure_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SUBSET", "gzip")
        # ExperimentRunner reads benchmarks at construction; the figure
        # command builds its own runner with the full suite, so pass a
        # tiny instruction budget instead and accept the runtime.
        cli.main(["figure", "table2", "-n", "300"])
        assert "Table 2" in capsys.readouterr().out

    def test_figure_chart(self, capsys):
        cli.main(["figure", "table2", "-n", "300", "--chart"])
        assert "#" in capsys.readouterr().out

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["figure", "fig99"])

    def test_sweep_command(self, capsys):
        cli.main(["sweep", "gzip", "-n", "500"])
        out = capsys.readouterr().out
        assert "geomean-speedup" in out and "best:" in out
