"""Regression tests for the paper's qualitative conclusions.

These pin the *shapes* EXPERIMENTS.md reports — who wins, in which
direction, where the outliers sit — on a reduced benchmark subset so a
future change that silently breaks a headline result fails the suite.
"""

import pytest
from dataclasses import replace

from repro.config import (
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    segmented_lsq,
    techniques_lsq,
)
from repro.harness.experiment import ExperimentRunner
from repro.stats.report import geometric_mean

SUBSET = ("gzip", "vortex", "mgrid", "equake")


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_instructions=2500, benchmarks=SUBSET)


def geomean_speedup(runner, lsq, base):
    results = runner.run_lsq_suite(lsq)
    return geometric_mean([results[b].ipc / base[b].ipc
                           for b in results]) - 1.0


@pytest.fixture(scope="module")
def base(runner):
    return runner.run_lsq_suite(conventional_lsq(ports=2))


class TestHeadlines:
    def test_one_port_conventional_loses(self, runner, base):
        assert geomean_speedup(runner, conventional_lsq(ports=1),
                               base) < -0.03

    def test_one_port_techniques_recovers(self, runner, base):
        one_conv = geomean_speedup(runner, conventional_lsq(ports=1), base)
        one_tech = geomean_speedup(runner, techniques_lsq(ports=1), base)
        assert one_tech > one_conv + 0.03
        assert one_tech > -0.02      # at worst on par with the 2p base

    def test_all_techniques_beat_base(self, runner, base):
        assert geomean_speedup(runner, full_techniques_lsq(ports=1),
                               base) > 0.05

    def test_segmentation_gains(self, runner, base):
        assert geomean_speedup(runner, segmented_lsq(ports=2), base) > 0.03


class TestBandwidthClaims:
    def test_pair_predictor_cuts_sq_demand_heavily(self, runner, base):
        pair = runner.run_lsq_suite(LsqConfig(predictor=PredictorMode.PAIR))
        ratios = [pair[b].stats.sq_searches
                  / max(base[b].stats.sq_searches, 1) for b in pair]
        assert geometric_mean([max(r, 1e-3) for r in ratios]) < 0.5

    def test_load_buffer_cuts_lq_demand_heavily(self, runner, base):
        buf = runner.run_lsq_suite(LsqConfig(
            lq_search=LoadQueueSearchMode.LOAD_BUFFER,
            load_buffer_entries=2))
        ratios = [buf[b].stats.lq_searches
                  / max(base[b].stats.lq_searches, 1) for b in buf]
        assert geometric_mean([max(r, 1e-3) for r in ratios]) < 0.6

    def test_vortex_is_the_least_reduced(self, runner, base):
        # Figure 8's outlier: store-heavy vortex keeps most LQ searches.
        buf = runner.run_lsq_suite(LsqConfig(
            lq_search=LoadQueueSearchMode.LOAD_BUFFER,
            load_buffer_entries=2))
        ratios = {b: buf[b].stats.lq_searches
                  / max(base[b].stats.lq_searches, 1) for b in buf}
        assert max(ratios, key=ratios.get) == "vortex"
        assert min(ratios, key=ratios.get) == "mgrid"


class TestPredictorOrdering:
    def test_aggressive_worse_than_pair_on_group_benchmarks(self, runner):
        from repro.harness.figures import (_predictor_base_machine,
                                           _predictor_machine)
        base = runner.run_suite(_predictor_base_machine())
        pair = runner.run_suite(_predictor_machine(PredictorMode.PAIR))
        aggressive = runner.run_suite(
            _predictor_machine(PredictorMode.AGGRESSIVE))
        # vortex: the paper's poster child for constructive interference.
        assert aggressive["vortex"].ipc < pair["vortex"].ipc
        assert pair["vortex"].stats.sq_searches \
            >= aggressive["vortex"].stats.sq_searches

    def test_perfect_predictor_is_safe(self, runner):
        from repro.harness.figures import (_predictor_base_machine,
                                           _predictor_machine)
        base = runner.run_suite(_predictor_base_machine())
        perfect = runner.run_suite(_predictor_machine(PredictorMode.PERFECT))
        for bench in SUBSET:
            assert perfect[bench].stats.store_load_squashes == 0
            assert perfect[bench].ipc > 0.93 * base[bench].ipc


class TestSuiteStructure:
    def test_fp_gains_exceed_int_gains_for_capacity(self, runner, base):
        seg = runner.run_lsq_suite(segmented_lsq(ports=2))
        int_gain = geometric_mean([seg[b].ipc / base[b].ipc
                                   for b in ("gzip", "vortex")])
        fp_gain = geometric_mean([seg[b].ipc / base[b].ipc
                                  for b in ("mgrid", "equake")])
        assert fp_gain > int_gain

    def test_table6_mostly_single_segment(self, runner):
        seg = runner.run_lsq_suite(segmented_lsq(ports=2))
        for bench in SUBSET:
            dist = seg[bench].stats.segment_search_distribution()
            assert dist.get(1, 0.0) > 0.5
