"""Unit tests for the load buffer and NILP tracker (Section 2.2)."""

import pytest

from repro.core.load_buffer import LoadBuffer, NilpTracker
from repro.pipeline.dyninst import DynInst, InstState
from tests.conftest import load


def dyn_load(seq, addr=None):
    return DynInst(seq, seq, load(addr if addr is not None else 0x100 + 8 * seq,
                                  pc=0x1000 + 4 * seq))


class TestLoadBuffer:
    def test_insert_and_full(self):
        buf = LoadBuffer(2)
        assert not buf.full
        buf.insert(dyn_load(1))
        buf.insert(dyn_load(2))
        assert buf.full
        assert len(buf) == 2

    def test_insert_into_full_raises(self):
        buf = LoadBuffer(1)
        buf.insert(dyn_load(1))
        with pytest.raises(RuntimeError):
            buf.insert(dyn_load(2))

    def test_release_frees_slot(self):
        buf = LoadBuffer(1)
        ld = dyn_load(1)
        buf.insert(ld)
        buf.release(ld)
        assert not buf.full
        assert ld.load_buffer_slot == -1

    def test_zero_entry_buffer_always_full(self):
        buf = LoadBuffer(0)
        assert buf.full

    def test_search_finds_younger_same_address(self):
        buf = LoadBuffer(4)
        younger = dyn_load(10, addr=0x40)
        buf.insert(younger)
        older = dyn_load(5, addr=0x40)
        assert buf.search(older) is younger

    def test_search_ignores_older_entries(self):
        buf = LoadBuffer(4)
        buf.insert(dyn_load(3, addr=0x40))
        probe = dyn_load(7, addr=0x40)
        assert buf.search(probe) is None

    def test_search_ignores_other_addresses(self):
        buf = LoadBuffer(4)
        buf.insert(dyn_load(10, addr=0x80))
        assert buf.search(dyn_load(5, addr=0x40)) is None

    def test_search_returns_oldest_violator(self):
        buf = LoadBuffer(4)
        mid = dyn_load(10, addr=0x40)
        young = dyn_load(20, addr=0x40)
        buf.insert(young)
        buf.insert(mid)
        assert buf.search(dyn_load(5, addr=0x40)) is mid

    def test_search_skips_self(self):
        buf = LoadBuffer(4)
        ld = dyn_load(5, addr=0x40)
        buf.insert(ld)
        assert buf.search(ld) is None

    def test_squash_from(self):
        buf = LoadBuffer(4)
        old, young = dyn_load(3), dyn_load(9)
        buf.insert(old)
        buf.insert(young)
        buf.squash_from(5)
        assert len(buf) == 1
        assert young.load_buffer_slot == -1
        assert old.load_buffer_slot >= 0


class TestNilpTracker:
    def test_nilp_is_oldest_non_issued(self):
        tracker = NilpTracker()
        loads = [dyn_load(i) for i in (1, 2, 3)]
        for ld in loads:
            tracker.on_allocate(ld)
        assert tracker.nilp_seq() == 1
        loads[0].mem_executed = True
        assert tracker.nilp_seq() == 2

    def test_is_in_order(self):
        tracker = NilpTracker()
        a, b = dyn_load(1), dyn_load(2)
        tracker.on_allocate(a)
        tracker.on_allocate(b)
        assert tracker.is_in_order(a)
        assert not tracker.is_in_order(b)

    def test_empty_tracker_in_order(self):
        tracker = NilpTracker()
        assert tracker.is_in_order(dyn_load(5))

    def test_ooo_count_lifecycle(self):
        tracker = NilpTracker()
        a, b = dyn_load(1), dyn_load(2)
        tracker.on_allocate(a)
        tracker.on_allocate(b)
        b.mem_executed = True
        tracker.mark_ooo_issue(b)
        assert tracker.ooo_in_flight == 1
        a.mem_executed = True
        passed = tracker.advance()
        assert passed == [b]
        assert tracker.ooo_in_flight == 0

    def test_advance_skips_in_order_loads(self):
        tracker = NilpTracker()
        a = dyn_load(1)
        tracker.on_allocate(a)
        a.mem_executed = True
        assert tracker.advance() == []  # in-order issue: nothing to release

    def test_squash_adjusts_count(self):
        tracker = NilpTracker()
        a, b, c = dyn_load(1), dyn_load(2), dyn_load(3)
        for ld in (a, b, c):
            tracker.on_allocate(ld)
        for ld in (b, c):
            ld.mem_executed = True
            tracker.mark_ooo_issue(ld)
        assert tracker.ooo_in_flight == 2
        b.state = InstState.SQUASHED
        c.state = InstState.SQUASHED
        tracker.on_squash(2)
        assert tracker.ooo_in_flight == 0

    def test_squashed_front_pruned(self):
        tracker = NilpTracker()
        a, b = dyn_load(1), dyn_load(2)
        tracker.on_allocate(a)
        tracker.on_allocate(b)
        a.state = InstState.SQUASHED
        assert tracker.nilp_seq() == 2

    def test_nilp_scans_past_issued_middle(self):
        tracker = NilpTracker()
        loads = [dyn_load(i) for i in (1, 2, 3)]
        for ld in loads:
            tracker.on_allocate(ld)
        loads[0].mem_executed = True
        loads[1].mem_executed = True
        # Without advance() being called, nilp_seq still finds seq 3.
        assert tracker.nilp_seq() == 3
