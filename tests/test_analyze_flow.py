"""Tests for the flow-aware rule families (SIM-T time taint, SIM-K
cache-key completeness, SIM-O obs purity) and the CLI surface that
shipped with them: ``--select`` validation, suppression validation,
SARIF export, partial mode, baseline staleness."""

import json
import textwrap

from repro.analyze import analyze_paths
from repro.analyze.baseline import (load_baseline, split_by_baseline,
                                    stale_entries, write_baseline)
from repro.analyze.runner import resolve_select, run_lint
from repro.analyze.sarif import sarif_document


def lint_tree(tmp_path, files, **kwargs):
    """Write ``{relpath: source}`` under ``tmp_path`` and analyze it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], root=str(tmp_path), **kwargs)


def rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# SIM-T: time taint
# ---------------------------------------------------------------------------

class TestTimeTaint:
    def test_t001_host_index_length_charged_to_counter(self, tmp_path):
        # The acceptance fixture: len() of a host-only index structure
        # flows into a SimStats counter.
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.searched += len(self._order)
        """}, select={"SIM-T001"})
        assert rules_of(findings) == ["SIM-T001"]
        assert "_order" in findings[0].message

    def test_t001_interprocedural_flow_with_trace(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def depth(self):
                    return len(self._granules)

                def sample(self):
                    self.stats.searched += self.depth()
        """}, select={"SIM-T001"})
        assert rules_of(findings) == ["SIM-T001"]
        assert "via" in findings[0].message and \
            "depth()" in findings[0].message

    def test_t001_cross_module_flow(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "core/q.py": """
                class Queue:
                    def occupancy(self):
                        return len(self._live)
            """,
            "core/lsq.py": """
                class LSQ:
                    def sample(self):
                        self.stats.occ += self.q.occupancy()
            """,
        }, select={"SIM-T001"})
        assert rules_of(findings) == ["SIM-T001"]
        assert findings[0].path.endswith("core/lsq.py")

    def test_t002_port_charge_and_latency(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def evil(self, ports, inst):
                    ports.reserve(len(self._order), 0)
                    inst.done_cycle = len(self._seg_seqs)
        """}, select={"SIM-T002"})
        assert rules_of(findings) == ["SIM-T002", "SIM-T002"]

    def test_model_state_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.occ += len(self.window)
                    self.stats.ooo += self.nilp.ooo_in_flight
        """}, select={"SIM-T001", "SIM-T002"})
        assert findings == []

    def test_blessed_model_view_launders(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            SIM_LINT_MODEL_VIEWS = frozenset({"backward_path"})

            class Queue:
                def backward_path(self, seq):
                    out = []
                    for segment, seqs in enumerate(self._seg_seqs):
                        out.append(segment)
                    return out

                def search(self, seq):
                    path = self.backward_path(seq)
                    self.stats.visits += len(path)
        """}, select={"SIM-T001"})
        assert findings == []

    def test_unblessed_same_flow_is_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def backward_path(self, seq):
                    out = []
                    for segment, seqs in enumerate(self._seg_seqs):
                        out.append(segment)
                    return out

                def search(self, seq):
                    path = self.backward_path(seq)
                    self.stats.visits += len(path)
        """}, select={"SIM-T001"})
        assert rules_of(findings) == ["SIM-T001"]

    def test_out_of_scope_module_not_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {"harness/h.py": """
            class Host:
                def sample(self):
                    self.stats.n += len(self._order)
        """}, select={"SIM-T001"})
        assert findings == []

    def test_suppression_accepted(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.occ += len(self._live)  # sim-lint: ignore[SIM-T001]
        """}, select={"SIM-T001"})
        assert findings == []


# ---------------------------------------------------------------------------
# SIM-K: cache-key completeness
# ---------------------------------------------------------------------------

CELL_WITH_GAP = """
    import json

    class Cell:
        benchmark: str
        seed: int
        threads: int

        def digest(self):
            return json.dumps({
                "benchmark": self.benchmark,
                "seed": self.seed,
            })


    def run_cell(cell):
        return simulate(cell.benchmark, cell.seed, cell.threads)
"""


class TestCacheKey:
    def test_k001_field_read_on_sim_path_missing_from_digest(self,
                                                             tmp_path):
        # The acceptance fixture: `threads` steers the simulation but
        # Cell.digest() never hashes it.
        findings = lint_tree(tmp_path, {"harness/engine.py": CELL_WITH_GAP},
                             select={"SIM-K001"})
        assert rules_of(findings) == ["SIM-K001"]
        assert "'threads'" in findings[0].message

    def test_k001_exempt_registry_clears(self, tmp_path):
        source = CELL_WITH_GAP.replace(
            "import json",
            "import json\n\n"
            "    SIM_LINT_CACHE_KEY_EXEMPT = frozenset({\"threads\"})")
        findings = lint_tree(tmp_path, {"harness/engine.py": source},
                             select={"SIM-K001"})
        assert findings == []

    def test_k001_read_off_sim_path_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"harness/engine.py": """
            import json

            class Cell:
                benchmark: str
                label: str

                def digest(self):
                    return json.dumps({"benchmark": self.benchmark})


            def run_cell(cell):
                return simulate(cell.benchmark)


            def report(cell):
                return cell.label
        """}, select={"SIM-K001"})
        assert findings == []

    def test_k001_interprocedural_reach(self, tmp_path):
        findings = lint_tree(tmp_path, {"harness/engine.py": """
            import json

            class Cell:
                benchmark: str
                fuel: int

                def digest(self):
                    return json.dumps({"benchmark": self.benchmark})


            def helper(cell):
                return cell.fuel


            def run_cell(cell):
                return helper(cell)
        """}, select={"SIM-K001"})
        assert rules_of(findings) == ["SIM-K001"]

    def test_k001_skipped_in_partial_mode(self, tmp_path):
        findings = lint_tree(tmp_path, {"harness/engine.py": CELL_WITH_GAP},
                             select={"SIM-K001"}, partial=True)
        assert findings == []

    def test_shipped_cell_digest_covers_sim_path_reads(self):
        # Meta-assertion on the real corpus: the shipped Cell's digest
        # payload covers every field the sim path reads (label is
        # display-only and unreachable from the entries).
        import os

        import repro
        package = os.path.dirname(os.path.abspath(repro.__file__))
        findings = analyze_paths([package], select={"SIM-K001"})
        assert findings == []


# ---------------------------------------------------------------------------
# SIM-O: obs purity
# ---------------------------------------------------------------------------

class TestObsPurity:
    def test_o001_unguarded_emission_flagged(self, tmp_path):
        # The acceptance fixture: an emission with no is-not-None guard.
        findings = lint_tree(tmp_path, {"core/c.py": """
            class Component:
                def step(self):
                    self.obs.emit("step", n=1)
        """}, select={"SIM-O001"})
        assert rules_of(findings) == ["SIM-O001"]

    def test_o001_guarded_forms_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/c.py": """
            class Component:
                def direct(self):
                    if self.obs is not None:
                        self.obs.emit("a")

                def aliased(self):
                    obs = self.obs
                    if obs is not None:
                        obs.emit("b")

                def early_return(self):
                    if self.obs is None:
                        return
                    self.obs.emit("c")

                def conditional_expr(self, observer):
                    return observer.summary() if observer is not None \\
                        else None

                def short_circuit(self, obs):
                    return obs is not None and obs.emit("d")

                def compound_guard(self, depth):
                    if self.obs is not None and depth > 1:
                        self.obs.emit("e", depth=depth)
        """}, select={"SIM-O001"})
        assert findings == []

    def test_o001_constructor_bound_handle_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"tool.py": """
            class Observer:
                def summary(self):
                    return None


            def main():
                observer = Observer()
                return observer.summary()
        """}, select={"SIM-O001"})
        assert findings == []

    def test_o001_factory_bound_handle_still_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"tool.py": """
            def main():
                observer = build_observer()
                return observer.summary()
        """}, select={"SIM-O001"})
        assert rules_of(findings) == ["SIM-O001"]

    def test_o001_rebinding_inside_guard_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/c.py": """
            class Component:
                def step(self, maker):
                    if self.obs is not None:
                        self.obs = maker()
                        self.obs.emit("a")
        """}, select={"SIM-O001"})
        assert rules_of(findings) == ["SIM-O001"]

    def test_o001_obs_package_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {"obs/events.py": """
            class EventBus:
                def forward(self, obs):
                    obs.emit("x")
        """}, select={"SIM-O001"})
        assert findings == []

    def test_o002_side_effecting_argument_flagged(self, tmp_path):
        # The acceptance fixture: the argument expression mutates state.
        findings = lint_tree(tmp_path, {"core/c.py": """
            class Component:
                def step(self):
                    if self.obs is not None:
                        self.obs.emit("pop", entry=self.queue.pop())
        """}, select={"SIM-O002"})
        assert rules_of(findings) == ["SIM-O002"]
        assert "pop()" in findings[0].message

    def test_o002_pure_arguments_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/c.py": """
            class Component:
                def step(self, path, which):
                    if self.obs is not None:
                        self.obs.emit("hop", n=len(path),
                                      note=f"{which}-done",
                                      top=max(path))
        """}, select={"SIM-O002"})
        assert findings == []


# ---------------------------------------------------------------------------
# --select and suppression validation
# ---------------------------------------------------------------------------

class TestSelectValidation:
    def test_family_prefix_expands(self):
        selected = resolve_select("SIM-T")
        assert selected == {"SIM-T001", "SIM-T002"}

    def test_exact_ids_and_prefix_union(self):
        selected = resolve_select("SIM-O001,SIM-K")
        assert selected == {"SIM-O001", "SIM-K001"}

    def test_unknown_select_exits_2(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        code = run_lint([str(tmp_path), "--select", "SIM-T01"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule 'SIM-T01'" in err
        assert "SIM-T001" in err          # near-miss suggestion

    def test_unknown_suppression_exits_2(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text(
            "import time\n"
            "t = time.time()  # sim-lint: ignore[SIM-D04]\n")
        code = run_lint([str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule 'SIM-D04'" in err
        assert "did you mean 'SIM-D004'" in err

    def test_bare_suppression_still_valid(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text(
            "import time\n"
            "t = time.time()  # sim-lint: ignore\n")
        assert run_lint([str(tmp_path)]) == 0


# ---------------------------------------------------------------------------
# Suppression / baseline edge cases
# ---------------------------------------------------------------------------

class TestSuppressionAndBaselineEdges:
    def test_multi_rule_ignore(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def evil(self, ports):
                    ports.reserve(len(self._order), 0)  # sim-lint: ignore[SIM-P001, SIM-T002]
        """}, select={"SIM-P001", "SIM-T002"})
        assert findings == []

    def test_multi_rule_ignore_leaves_unlisted_rule(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def evil(self, ports):
                    ports.reserve(len(self._order), 0)  # sim-lint: ignore[SIM-P001]
        """}, select={"SIM-P001", "SIM-T002"})
        assert rules_of(findings) == ["SIM-T002"]

    def test_stale_baseline_entries_detected(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.occ += len(self._live)
        """}, select={"SIM-T001"})
        baseline = {findings[0].fingerprint(): findings[0].message,
                    "SIM-T001::core/gone.py::7": "deleted long ago"}
        new, old = split_by_baseline(findings, baseline)
        assert new == [] and len(old) == 1
        assert stale_entries(findings, baseline) == \
            ["SIM-T001::core/gone.py::7"]

    def test_baseline_round_trip_stability(self, tmp_path):
        files = {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.occ += len(self._live)
        """}
        findings = lint_tree(tmp_path, files, select={"SIM-T001"})
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), findings)
        again = analyze_paths([str(tmp_path)], root=str(tmp_path),
                              select={"SIM-T001"})
        baseline = load_baseline(str(baseline_path))
        new, old = split_by_baseline(again, baseline)
        assert new == [] and len(old) == len(findings)
        assert stale_entries(again, baseline) == []
        # Writing again from the same findings is byte-stable.
        second_path = tmp_path / "baseline2.json"
        write_baseline(str(second_path), again)
        assert baseline_path.read_text() == second_path.read_text()

    def test_runner_reports_stale_entries(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps({"SIM-T001::core/gone.py::7": "paid off"}))
        code = run_lint([str(tmp_path), "--baseline", str(baseline_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------

class TestSarifExport:
    def test_document_shape(self, tmp_path):
        findings = lint_tree(tmp_path, {"core/q.py": """
            class Queue:
                def sample(self):
                    self.stats.occ += len(self._live)
        """}, select={"SIM-T001"})
        doc = sarif_document(findings)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "sim-lint"
        rules = run["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == ["SIM-T001"]
        result = run["results"][0]
        assert result["ruleId"] == "SIM-T001"
        assert result["ruleIndex"] == 0
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("core/q.py")
        assert location["region"]["startLine"] == findings[0].line
        assert result["partialFingerprints"]["simLint/v1"] == \
            findings[0].fingerprint()

    def test_cli_writes_file_and_empty_run_is_valid(self, tmp_path,
                                                    capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        sarif_path = tmp_path / "lint.sarif"
        code = run_lint([str(tmp_path), "--sarif", str(sarif_path)])
        assert code == 0
        doc = json.loads(sarif_path.read_text())
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


# ---------------------------------------------------------------------------
# scripts/lint.py perf budget
# ---------------------------------------------------------------------------

class TestLintPerfBudget:
    def test_exceeded_budget_fails_with_notice(self):
        import os
        import subprocess
        import sys
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(root, "src"))
        proc = subprocess.run(
            [sys.executable, os.path.join(root, "scripts", "lint.py"),
             "--perf-budget", "0.0001"],
            capture_output=True, text=True, env=env, cwd=root)
        assert proc.returncode == 1
        assert "perf budget EXCEEDED" in proc.stdout
